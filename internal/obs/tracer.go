package obs

import (
	"sync"
	"sync/atomic"
)

// PipelineTrace is the trace ID shared by all wall-clock pipeline phase
// spans of one run. Pipeline spans travel on their own stream (the run
// archive's trace.jsonl, the -trace-out export), so the fixed ID never
// collides with the simulator's per-request trace IDs on the event
// stream.
const PipelineTrace TraceID = 1

// Tracer hands out wall-clock pipeline phases. It is the bridge between
// the sanctioned Clock and the Sink plane: every Phase measures itself
// with the tracer's clock and emits one "span" event into the tracer's
// sink when it ends.
//
// The nil *Tracer is the off switch: it hands out nil Phases whose
// methods all no-op without allocating, so instrumented code threads a
// possibly-nil tracer unconditionally and pays one pointer check when
// tracing is off. Span-ID assignment is atomic; Phases may be created
// and ended from worker-pool goroutines.
type Tracer struct {
	sink  Sink
	clock Clock
	res   ResourceSource
	next  atomic.Uint64
}

// NewTracer builds a tracer emitting into sink, timed by clock
// (WallClock when nil). A nil sink returns a nil tracer — tracing off.
func NewTracer(sink Sink, clock Clock) *Tracer {
	if sink == nil {
		return nil
	}
	if clock == nil {
		clock = WallClock()
	}
	return &Tracer{sink: sink, clock: clock}
}

// SetResources attaches a resource source: every phase created
// afterwards snapshots resources at its start and again at End, and
// emits the deltas (heap growth, allocations, GC cycles and pause time)
// as span attributes — the raw material of tacreport's per-phase
// resource-attribution table. Call before creating phases; phases
// started earlier simply carry no resource attributes. Nil-safe in both
// directions: a nil tracer or a nil source leaves tracing untouched.
func (t *Tracer) SetResources(src ResourceSource) {
	if t == nil || src == nil {
		return
	}
	t.res = src
}

// NowMs reads the tracer's clock (0 on a nil tracer).
func (t *Tracer) NowMs() float64 {
	if t == nil {
		return 0
	}
	return t.clock.NowMs()
}

// Root starts a top-level phase (span Parent 0). Nil-safe.
func (t *Tracer) Root(name string) *Phase { return t.startPhase(name, 0) }

func (t *Tracer) startPhase(name string, parent SpanID) *Phase {
	if t == nil {
		return nil
	}
	p := &Phase{
		t:       t,
		id:      SpanID(t.next.Add(1)),
		parent:  parent,
		name:    name,
		startMs: t.clock.NowMs(),
	}
	if t.res != nil {
		p.beginRes = t.res.ResourceSnapshot()
		p.hasRes = true
	}
	return p
}

// Phase is one live wall-clock span: created by Tracer.Root or
// Phase.Child, closed by End, which emits the span. All methods are
// nil-receiver no-ops, so "tracing off" costs a single nil check at
// each phase boundary and zero allocations.
type Phase struct {
	t       *Tracer
	id      SpanID
	parent  SpanID
	name    string
	startMs float64

	// beginRes is the resource snapshot taken when the phase started;
	// valid only when hasRes (tracer had a ResourceSource attached).
	// Immutable after construction, so End reads it without the lock.
	beginRes ResourceSnapshot
	hasRes   bool

	mu    sync.Mutex
	attrs map[string]interface{}
	ended bool
}

// Child starts a sub-phase of p. Safe to call from worker goroutines.
func (p *Phase) Child(name string) *Phase {
	if p == nil {
		return nil
	}
	return p.t.startPhase(name, p.id)
}

// Tracer returns the phase's tracer (nil on a nil phase), for handing
// the tracing plane further down a call chain.
func (p *Phase) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	return p.t
}

// NowMs reads the phase's clock (0 on a nil phase).
func (p *Phase) NowMs() float64 { return p.Tracer().NowMs() }

// SetAttr attaches a span attribute (JSON-serializable value). Calls
// after End are dropped.
func (p *Phase) SetAttr(key string, v interface{}) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ended {
		return
	}
	if p.attrs == nil {
		p.attrs = make(map[string]interface{}, 4)
	}
	p.attrs[key] = v
}

// End closes the phase and emits its span. Children should be ended
// first (they usually are, by construction); End is idempotent.
func (p *Phase) End() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.ended {
		p.mu.Unlock()
		return
	}
	p.ended = true
	attrs := p.attrs
	p.mu.Unlock()
	if p.hasRes {
		// Once ended is set no SetAttr can touch the map, so merging the
		// resource attributes outside the lock is safe.
		end := p.t.res.ResourceSnapshot()
		if attrs == nil {
			attrs = make(map[string]interface{}, 6)
		}
		b := p.beginRes
		attrs["heap_begin_bytes"] = b.HeapAllocBytes
		attrs["heap_end_bytes"] = end.HeapAllocBytes
		attrs["heap_delta_bytes"] = int64(end.HeapAllocBytes) - int64(b.HeapAllocBytes)
		attrs["allocs"] = end.Mallocs - b.Mallocs
		attrs["gc_cycles"] = end.GCCycles - b.GCCycles
		attrs["gc_pause_ms"] = end.GCPauseMs - b.GCPauseMs
	}
	EmitSpan(p.t.sink, Span{
		Trace:   PipelineTrace,
		ID:      p.id,
		Parent:  p.parent,
		Name:    p.name,
		StartMs: p.startMs,
		EndMs:   p.t.clock.NowMs(),
		Attrs:   attrs,
	})
}

// Span emits a retroactively-timed child span of p — for work that was
// measured out of band, like per-worker shards whose timings come back
// from the worker pool after the fact. Nil-safe.
func (p *Phase) Span(name string, startMs, endMs float64, attrs map[string]interface{}) {
	if p == nil {
		return
	}
	EmitSpan(p.t.sink, Span{
		Trace:   PipelineTrace,
		ID:      SpanID(p.t.next.Add(1)),
		Parent:  p.id,
		Name:    name,
		StartMs: startMs,
		EndMs:   endMs,
		Attrs:   attrs,
	})
}

// SpanCollector is a Sink that retains every span event it sees,
// decoded back into Spans — the in-memory side of -trace-out exports.
// Non-span events are ignored. Safe for concurrent emit.
type SpanCollector struct {
	mu    sync.Mutex
	spans []Span
}

// Emit implements Sink.
func (c *SpanCollector) Emit(e Event) {
	if c == nil {
		return
	}
	sp, ok := SpanFromEvent(e)
	if !ok {
		return
	}
	c.mu.Lock()
	c.spans = append(c.spans, sp)
	c.mu.Unlock()
}

// Spans returns the collected spans in emission order.
func (c *SpanCollector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}
