// Package obs is the repository's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms), a
// structured event stream for solver and experiment progress, and
// profiling hooks.
//
// Everything here follows one contract: instrumentation is optional,
// nil-safe and off by default. A nil *Registry hands out nil metrics whose
// methods no-op; emitting into a nil Sink or ProgressSink is a no-op; no
// hook ever touches the instrumented code's random streams or results, so
// runs with and without observability attached are bit-identical (the
// workers=1 vs workers=8 determinism guarantees of internal/par are
// preserved with sinks attached).
//
// All mutation paths are safe under the internal/par worker pool: metric
// updates are atomic, registration and the JSONL sink serialize behind a
// mutex. Event *ordering* across concurrent emitters is not deterministic —
// events carry their own identifying fields (algo, rep, iter) instead.
package obs

import (
	"bufio"
	"io"
	"sync"
)

// Event is one structured observation. Kind names the event type ("iter",
// "cell", "spec-start", ...); Fields carry the payload. Field values must
// be JSON-serializable (strings, bools, finite numbers).
type Event struct {
	Kind   string
	Fields map[string]interface{}
}

// Sink consumes events. Implementations must be safe for concurrent use;
// events can arrive from worker-pool goroutines.
type Sink interface {
	Emit(Event)
}

// Emit sends an event into s, tolerating a nil sink.
func Emit(s Sink, kind string, fields map[string]interface{}) {
	if s == nil {
		return
	}
	s.Emit(Event{Kind: kind, Fields: fields})
}

// NullSink discards every event — the explicit "off" implementation.
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(Event) {}

// SinkFunc adapts a function to the Sink interface. The function must be
// safe for concurrent calls.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// MultiSink fans each event out to every non-nil sink in order.
func MultiSink(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiSink(kept)
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// CountEvents wraps next so that every event also increments the counter
// "events.<kind>" in r — a cheap way to keep a live tally of an event
// stream in a metrics registry. next may be nil (count only).
func CountEvents(r *Registry, next Sink) Sink {
	return SinkFunc(func(e Event) {
		r.Counter("events." + e.Kind).Inc()
		if next != nil {
			next.Emit(e)
		}
	})
}

// JSONL streams events as JSON Lines: one object per event with the kind
// under "kind" plus the event's fields. Writes are serialized behind a
// mutex so worker-pool goroutines can share one sink; the first
// marshal/write error is latched and reported by Flush.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
	n   int
}

// NewJSONL wraps w in a buffered JSONL sink. Call Flush before closing the
// underlying writer.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Emit implements Sink. A nil *JSONL discards the event, so disabled
// streams can flow through MultiSink as typed nils without harm.
func (s *JSONL) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	// encodeLine sorts object keys, so lines are deterministic per event.
	buf, err := encodeLine(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(buf); err != nil {
		s.err = err
		return
	}
	s.n++
}

// N returns the number of events written so far (0 on a nil receiver).
func (s *JSONL) N() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Flush drains the buffer and returns the first error encountered.
// Nil-safe, like Emit.
func (s *JSONL) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
