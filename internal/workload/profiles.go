package workload

// Named profile presets for common deployment archetypes. Examples and
// experiments use these so scenario definitions stay comparable across the
// repository; tune per deployment by editing the returned value.

// SmartCityProfile models roadside sensing: many loop/environment sensors
// plus camera clusters at intersections. Payloads are large and bursty on
// the camera side; deadlines are loose (traffic analytics, not control).
func SmartCityProfile(seed int64) Profile {
	return Profile{
		Classes: []Class{
			{Name: "loop-sensor", Weight: 0.55, RateHz: 2, RateJitter: 0.5, PayloadKB: 0.5, PayloadSigma: 0.2, ComputeUnits: 0.3, DeadlineMs: 150},
			{Name: "env-sensor", Weight: 0.15, RateHz: 0.5, RateJitter: 0.3, PayloadKB: 1, PayloadSigma: 0.2, ComputeUnits: 0.2, DeadlineMs: 500},
			{Name: "camera", Weight: 0.3, RateHz: 8, RateJitter: 0.3, PayloadKB: 60, PayloadSigma: 0.4, ComputeUnits: 1.5, DeadlineMs: 120, BurstProb: 0.3},
		},
		Seed: seed,
	}
}

// FactoryProfile models industrial control: high-rate PLC telemetry with
// hard deadlines, vibration monitoring, and sparse vision QA bursts.
func FactoryProfile(seed int64) Profile {
	return Profile{
		Classes: []Class{
			{Name: "plc", Weight: 0.5, RateHz: 20, RateJitter: 0.1, PayloadKB: 0.2, PayloadSigma: 0.1, ComputeUnits: 0.4, DeadlineMs: 10},
			{Name: "vibration", Weight: 0.3, RateHz: 50, RateJitter: 0.2, PayloadKB: 2, PayloadSigma: 0.3, ComputeUnits: 0.8, DeadlineMs: 20},
			{Name: "vision-qa", Weight: 0.2, RateHz: 5, RateJitter: 0.2, PayloadKB: 80, PayloadSigma: 0.3, ComputeUnits: 3, DeadlineMs: 50, BurstProb: 0.5},
		},
		Seed: seed,
	}
}

// WearablesProfile models consumer wearables and home IoT: very many tiny
// devices, low rates, no hard deadlines, strong popularity skew (a few
// chatty devices dominate).
func WearablesProfile(seed int64) Profile {
	return Profile{
		Classes: []Class{
			{Name: "wearable", Weight: 0.8, RateHz: 0.5, RateJitter: 0.6, PayloadKB: 0.5, PayloadSigma: 0.4, ComputeUnits: 0.1},
			{Name: "hub", Weight: 0.2, RateHz: 4, RateJitter: 0.4, PayloadKB: 4, PayloadSigma: 0.4, ComputeUnits: 0.4, DeadlineMs: 300},
		},
		ZipfSkew: 1.0,
		Seed:     seed,
	}
}

// Profiles returns the named presets, keyed the way cmd/tacgen exposes
// them.
func Profiles(seed int64) map[string]Profile {
	return map[string]Profile{
		"default":   DefaultProfile(seed),
		"smartcity": SmartCityProfile(seed),
		"factory":   FactoryProfile(seed),
		"wearables": WearablesProfile(seed),
	}
}
