package workload

import "fmt"

// Replay is a trace-driven arrival process: it replays a recorded sequence
// of inter-arrival gaps, cycling when the recording is exhausted, so
// measured device behaviour can be fed back into the simulator.
type Replay struct {
	gapsMs []float64
	next   int
}

// NewReplay wraps a recorded gap sequence (milliseconds). The slice is
// copied; it must be non-empty with positive entries.
func NewReplay(gapsMs []float64) (*Replay, error) {
	if len(gapsMs) == 0 {
		return nil, fmt.Errorf("workload: replay needs at least one gap")
	}
	for i, g := range gapsMs {
		if g <= 0 {
			return nil, fmt.Errorf("workload: replay gap %d is %v, want positive", i, g)
		}
	}
	out := make([]float64, len(gapsMs))
	copy(out, gapsMs)
	return &Replay{gapsMs: out}, nil
}

// NextGapMs implements Arrivals, cycling through the recording.
func (r *Replay) NextGapMs() float64 {
	g := r.gapsMs[r.next]
	r.next = (r.next + 1) % len(r.gapsMs)
	return g
}

// Len returns the recording length.
func (r *Replay) Len() int { return len(r.gapsMs) }
