package workload

import (
	"math"
	"testing"
	"testing/quick"

	"taccc/internal/xrand"
)

func TestGenerateBasics(t *testing.T) {
	devs, err := Generate(200, DefaultProfile(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 200 {
		t.Fatalf("len = %d, want 200", len(devs))
	}
	for i, d := range devs {
		if d.ID != i {
			t.Fatalf("device %d has ID %d", i, d.ID)
		}
		if d.RateHz <= 0 || d.PayloadKB <= 0 || d.ComputeUnits <= 0 {
			t.Fatalf("device %d has non-positive fields: %+v", i, d)
		}
		if d.Load() != d.RateHz*d.ComputeUnits {
			t.Fatalf("Load() mismatch for %+v", d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(50, DefaultProfile(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(50, DefaultProfile(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("device %d differs between equal-seed runs", i)
		}
	}
	c, err := Generate(50, DefaultProfile(43))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(0, DefaultProfile(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Generate(5, Profile{}); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := Generate(5, Profile{Classes: []Class{{Name: "x", Weight: -1, RateHz: 1, ComputeUnits: 1}}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Generate(5, Profile{Classes: []Class{{Name: "x", Weight: 1, RateHz: 0, ComputeUnits: 1}}}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Generate(5, Profile{Classes: []Class{{Name: "x", Weight: 0, RateHz: 1, ComputeUnits: 1}}}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestZipfSkewConcentratesLoad(t *testing.T) {
	flat := Profile{
		Classes: []Class{{Name: "s", Weight: 1, RateHz: 5, ComputeUnits: 1}},
		Seed:    7,
	}
	skewed := flat
	skewed.ZipfSkew = 1.2
	fd, err := Generate(500, flat)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := Generate(500, skewed)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficient of variation of load should be higher under skew.
	cv := func(devs []Device) float64 {
		mean, n := 0.0, float64(len(devs))
		for _, d := range devs {
			mean += d.Load()
		}
		mean /= n
		v := 0.0
		for _, d := range devs {
			v += (d.Load() - mean) * (d.Load() - mean)
		}
		return math.Sqrt(v/n) / mean
	}
	if cv(sd) <= cv(fd) {
		t.Fatalf("skewed CV %v should exceed flat CV %v", cv(sd), cv(fd))
	}
}

func TestTotalLoad(t *testing.T) {
	devs := []Device{{RateHz: 2, ComputeUnits: 3}, {RateHz: 1, ComputeUnits: 0.5}}
	if got := TotalLoad(devs); got != 6.5 {
		t.Fatalf("TotalLoad = %v, want 6.5", got)
	}
	if TotalLoad(nil) != 0 {
		t.Fatal("TotalLoad(nil) != 0")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	src := xrand.New(3)
	p, err := NewPoisson(10, src) // 10 Hz -> mean gap 100 ms
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		g := p.NextGapMs()
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("mean gap = %v ms, want ~100", mean)
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	if _, err := NewPoisson(0, xrand.New(1)); err == nil {
		t.Fatal("rate 0 accepted")
	}
}

func TestMMPPMeanRatePreserved(t *testing.T) {
	src := xrand.New(5)
	m, err := NewMMPP(10, 5, 0.2, 10000, src)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate long enough to cover many burst cycles.
	total := 0.0
	count := 0
	for total < 3_600_000 { // one simulated hour
		total += m.NextGapMs()
		count++
	}
	rate := float64(count) / (total / 1000)
	if math.Abs(rate-10) > 1 {
		t.Fatalf("MMPP long-run rate = %v Hz, want ~10", rate)
	}
}

func TestMMPPBurstier(t *testing.T) {
	// Squared coefficient of variation of gaps: Poisson has ~1, MMPP > 1.
	cv2 := func(a Arrivals, n int) float64 {
		mean, m2 := 0.0, 0.0
		gaps := make([]float64, n)
		for i := range gaps {
			gaps[i] = a.NextGapMs()
			mean += gaps[i]
		}
		mean /= float64(n)
		for _, g := range gaps {
			m2 += (g - mean) * (g - mean)
		}
		return m2 / float64(n) / (mean * mean)
	}
	p, err := NewPoisson(10, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMMPP(10, 8, 0.1, 5000, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pc, mc := cv2(p, 200000), cv2(m, 200000)
	if mc <= pc*1.2 {
		t.Fatalf("MMPP CV^2 %v not meaningfully above Poisson %v", mc, pc)
	}
}

func TestMMPPRejectsBadParams(t *testing.T) {
	src := xrand.New(1)
	cases := [][4]float64{
		{0, 5, 0.2, 1000},  // rate
		{10, 1, 0.2, 1000}, // factor <= 1
		{10, 5, 0, 1000},   // duty 0
		{10, 5, 1, 1000},   // duty 1
		{10, 5, 0.2, 0},    // cycle
	}
	for i, c := range cases {
		if _, err := NewMMPP(c[0], c[1], c[2], c[3], src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewArrivalsSelectsProcess(t *testing.T) {
	src := xrand.New(1)
	a, err := NewArrivals(Device{RateHz: 1, Bursty: false}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*Poisson); !ok {
		t.Fatalf("non-bursty device got %T", a)
	}
	b, err := NewArrivals(Device{RateHz: 1, Bursty: true}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*MMPP); !ok {
		t.Fatalf("bursty device got %T", b)
	}
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	w, err := NewRandomWaypoint(1000, 1, 10, 500, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		p := w.Advance(100)
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
			t.Fatalf("walker escaped area: %+v", p)
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	w, err := NewRandomWaypoint(1000, 5, 5, 0, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	start := w.Pos()
	w.Advance(60_000) // one minute at 5 m/s
	end := w.Pos()
	if math.Hypot(end.X-start.X, end.Y-start.Y) == 0 {
		t.Fatal("walker did not move")
	}
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	w, err := NewRandomWaypoint(1000, 2, 4, 0, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	prev := w.Pos()
	for i := 0; i < 2000; i++ {
		cur := w.Advance(50) // 50 ms steps
		d := math.Hypot(cur.X-prev.X, cur.Y-prev.Y)
		// Max distance in 50 ms at 4 m/s is 0.2 m (plus epsilon).
		if d > 0.2+1e-9 {
			t.Fatalf("step %d moved %v m in 50 ms (max 0.2)", i, d)
		}
		prev = cur
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	// With an enormous pause, the walker should be stationary most of the
	// time after reaching its first destination.
	w, err := NewRandomWaypoint(100, 50, 50, 1e9, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	w.Advance(10_000) // reach destination (area 100 m at 50 m/s: max ~3 s)
	p1 := w.Advance(1000)
	p2 := w.Advance(1000)
	if p1 != p2 {
		t.Fatalf("walker moved during pause: %+v -> %+v", p1, p2)
	}
}

func TestRandomWaypointErrors(t *testing.T) {
	src := xrand.New(1)
	if _, err := NewRandomWaypoint(0, 1, 2, 0, src); err == nil {
		t.Error("area 0 accepted")
	}
	if _, err := NewRandomWaypoint(100, 0, 2, 0, src); err == nil {
		t.Error("min speed 0 accepted")
	}
	if _, err := NewRandomWaypoint(100, 3, 2, 0, src); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := NewRandomWaypoint(100, 1, 2, -1, src); err == nil {
		t.Error("negative pause accepted")
	}
}

func TestRandomWaypointNegativeAdvancePanics(t *testing.T) {
	w, err := NewRandomWaypoint(100, 1, 2, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	w.Advance(-1)
}

// Property: generated devices always have positive load and respect class
// deadline values for arbitrary seeds.
func TestGenerateQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		devs, err := Generate(n, DefaultProfile(seed))
		if err != nil {
			return false
		}
		for _, d := range devs {
			if d.Load() <= 0 || d.DeadlineMs < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
