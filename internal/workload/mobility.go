package workload

import (
	"fmt"
	"math"

	"taccc/internal/xrand"
)

// Position is a planar coordinate in meters.
type Position struct {
	X, Y float64
}

// RandomWaypoint simulates the classic random-waypoint mobility model for
// one device: pick a destination uniformly in the area, travel at a uniform
// speed, pause, repeat. The cluster simulator samples positions over time
// to re-attach mobile IoT devices to their nearest gateway.
type RandomWaypoint struct {
	areaMeters   float64
	minSpeedMps  float64
	maxSpeedMps  float64
	pauseMs      float64
	pos          Position
	dest         Position
	speedMps     float64
	pauseLeftMs  float64
	travelLeftMs float64
	src          *xrand.Source
}

// NewRandomWaypoint creates a walker starting at a uniform position.
func NewRandomWaypoint(areaMeters, minSpeedMps, maxSpeedMps, pauseMs float64, src *xrand.Source) (*RandomWaypoint, error) {
	if areaMeters <= 0 {
		return nil, fmt.Errorf("workload: RandomWaypoint area must be positive, got %v", areaMeters)
	}
	if minSpeedMps <= 0 || maxSpeedMps < minSpeedMps {
		return nil, fmt.Errorf("workload: invalid speed range [%v, %v]", minSpeedMps, maxSpeedMps)
	}
	if pauseMs < 0 {
		return nil, fmt.Errorf("workload: negative pause %v", pauseMs)
	}
	w := &RandomWaypoint{
		areaMeters:  areaMeters,
		minSpeedMps: minSpeedMps,
		maxSpeedMps: maxSpeedMps,
		pauseMs:     pauseMs,
		src:         src,
		pos: Position{
			X: src.Uniform(0, areaMeters),
			Y: src.Uniform(0, areaMeters),
		},
	}
	w.pickDestination()
	return w, nil
}

func (w *RandomWaypoint) pickDestination() {
	w.dest = Position{X: w.src.Uniform(0, w.areaMeters), Y: w.src.Uniform(0, w.areaMeters)}
	w.speedMps = w.src.Uniform(w.minSpeedMps, w.maxSpeedMps)
	dist := math.Hypot(w.dest.X-w.pos.X, w.dest.Y-w.pos.Y)
	w.travelLeftMs = dist / w.speedMps * 1000
	w.pauseLeftMs = 0
}

// Pos returns the current position.
func (w *RandomWaypoint) Pos() Position { return w.pos }

// Advance moves the walker forward by dtMs milliseconds and returns the new
// position. It panics on negative dt.
func (w *RandomWaypoint) Advance(dtMs float64) Position {
	if dtMs < 0 {
		panic(fmt.Sprintf("workload: Advance with negative dt %v", dtMs))
	}
	remaining := dtMs
	for remaining > 0 {
		if w.pauseLeftMs > 0 {
			if w.pauseLeftMs >= remaining {
				w.pauseLeftMs -= remaining
				return w.pos
			}
			remaining -= w.pauseLeftMs
			w.pauseLeftMs = 0
			w.pickDestination()
			continue
		}
		if w.travelLeftMs >= remaining {
			frac := remaining / w.travelLeftMs
			w.pos.X += (w.dest.X - w.pos.X) * frac
			w.pos.Y += (w.dest.Y - w.pos.Y) * frac
			w.travelLeftMs -= remaining
			return w.pos
		}
		// Arrive at the destination and start pausing.
		remaining -= w.travelLeftMs
		w.travelLeftMs = 0
		w.pos = w.dest
		w.pauseLeftMs = w.pauseMs
		if w.pauseMs == 0 {
			w.pickDestination()
		}
	}
	return w.pos
}
