package workload

import "testing"

func TestReplayCycles(t *testing.T) {
	r, err := NewReplay([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 10, 20, 30, 10}
	for i, w := range want {
		if g := r.NextGapMs(); g != w {
			t.Fatalf("gap %d = %v, want %v", i, g, w)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Error("empty recording accepted")
	}
	if _, err := NewReplay([]float64{5, 0}); err == nil {
		t.Error("zero gap accepted")
	}
	if _, err := NewReplay([]float64{-1}); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestReplayCopiesInput(t *testing.T) {
	gaps := []float64{5, 5}
	r, err := NewReplay(gaps)
	if err != nil {
		t.Fatal(err)
	}
	gaps[0] = 99
	if g := r.NextGapMs(); g != 5 {
		t.Fatalf("replay aliases caller slice: %v", g)
	}
}

// Replay satisfies the Arrivals interface.
var _ Arrivals = (*Replay)(nil)
