package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteDevicesJSON serializes a device population.
func WriteDevicesJSON(w io.Writer, devices []Device) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(devices)
}

// ReadDevicesJSON parses a population written by WriteDevicesJSON and
// validates the fields the simulator depends on.
func ReadDevicesJSON(r io.Reader) ([]Device, error) {
	var devices []Device
	if err := json.NewDecoder(r).Decode(&devices); err != nil {
		return nil, fmt.Errorf("workload: decoding devices: %w", err)
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("workload: empty device population")
	}
	for i, d := range devices {
		if d.RateHz <= 0 || d.ComputeUnits <= 0 || d.PayloadKB < 0 || d.DeadlineMs < 0 {
			return nil, fmt.Errorf("workload: device %d has invalid fields: %+v", i, d)
		}
	}
	return devices, nil
}
