// Package workload generates the synthetic IoT demand that drives both the
// assignment problem (per-device load) and the cluster simulator
// (per-request arrival streams). Since the paper's traces are unavailable,
// these generators reproduce the properties that matter for the algorithms:
// heterogeneous per-device rates with Zipf skew, bursty arrivals, variable
// payloads and per-class deadlines.
package workload

import (
	"fmt"

	"taccc/internal/xrand"
)

// Device describes one IoT device's demand profile.
type Device struct {
	// ID indexes the device; it matches the row of the delay matrix.
	ID int
	// RateHz is the mean request rate.
	RateHz float64
	// PayloadKB is the mean uplink payload per request.
	PayloadKB float64
	// ComputeUnits is the processing cost of one request on an edge
	// server, in abstract capacity units.
	ComputeUnits float64
	// DeadlineMs is the end-to-end latency deadline of this device's
	// requests; 0 means best-effort.
	DeadlineMs float64
	// Bursty selects the MMPP arrival process instead of Poisson.
	Bursty bool
}

// Load returns the steady-state capacity demand of the device: rate times
// per-request compute.
func (d Device) Load() float64 { return d.RateHz * d.ComputeUnits }

// Class is a device archetype used by Profile to mix heterogeneous
// populations (e.g. cameras vs. scalar sensors).
type Class struct {
	// Name labels the class in reports.
	Name string
	// Weight is the relative share of devices drawn from this class.
	Weight float64
	// RateHz and RateJitter bound the per-device mean rate:
	// rate ~ Uniform(RateHz*(1-RateJitter), RateHz*(1+RateJitter)).
	RateHz     float64
	RateJitter float64
	// PayloadKB is the mean payload; per-device payloads are lognormal
	// around it with the given sigma.
	PayloadKB    float64
	PayloadSigma float64
	// ComputeUnits is the per-request processing cost.
	ComputeUnits float64
	// DeadlineMs is the class deadline (0 = best-effort).
	DeadlineMs float64
	// BurstProb is the probability a device of this class is bursty.
	BurstProb float64
}

// Profile configures a device population.
type Profile struct {
	// Classes to mix; must be non-empty with positive total weight.
	Classes []Class
	// ZipfSkew, when > 0, multiplies device rates by a Zipf-distributed
	// popularity factor so a few devices dominate demand. 0 disables.
	ZipfSkew float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultProfile models a mixed sensing deployment: many low-rate scalar
// sensors, some medium-rate trackers, a few heavy camera streams. Loads
// span ~30x between classes, but the heaviest single device stays well
// below one edge server's capacity so the tightness knob rho remains
// meaningful; use a custom Profile with ZipfSkew for hotter tails.
func DefaultProfile(seed int64) Profile {
	return Profile{
		Classes: []Class{
			{Name: "sensor", Weight: 0.7, RateHz: 1, RateJitter: 0.5, PayloadKB: 1, PayloadSigma: 0.3, ComputeUnits: 0.2, DeadlineMs: 150},
			{Name: "tracker", Weight: 0.2, RateHz: 5, RateJitter: 0.4, PayloadKB: 4, PayloadSigma: 0.4, ComputeUnits: 0.5, DeadlineMs: 80, BurstProb: 0.3},
			{Name: "camera", Weight: 0.1, RateHz: 10, RateJitter: 0.3, PayloadKB: 40, PayloadSigma: 0.5, ComputeUnits: 0.5, DeadlineMs: 250, BurstProb: 0.5},
		},
		Seed: seed,
	}
}

// Generate draws n devices from the profile. The same profile (including
// seed) always produces the same population.
func Generate(n int, p Profile) ([]Device, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: Generate needs n > 0, got %d", n)
	}
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("workload: profile has no classes")
	}
	weights := make([]float64, len(p.Classes))
	total := 0.0
	for i, c := range p.Classes {
		if c.Weight < 0 {
			return nil, fmt.Errorf("workload: class %q has negative weight", c.Name)
		}
		if c.RateHz <= 0 || c.ComputeUnits <= 0 {
			return nil, fmt.Errorf("workload: class %q needs positive rate and compute", c.Name)
		}
		weights[i] = c.Weight
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: profile weights sum to %v", total)
	}
	src := xrand.NewSplit(p.Seed, "workload")
	var zipf *xrand.Zipf
	var popPerm []int
	if p.ZipfSkew > 0 {
		zipf = xrand.NewZipf(src.Split("zipf"), n, p.ZipfSkew)
		popPerm = src.Split("perm").Perm(n)
	}
	devices := make([]Device, n)
	for i := range devices {
		c := p.Classes[src.Choice(weights)]
		jitter := src.Uniform(1-c.RateJitter, 1+c.RateJitter)
		rate := c.RateHz * jitter
		if zipf != nil {
			// Popularity factor: n * P(rank) keeps the population
			// mean rate roughly unchanged while skewing devices.
			factor := float64(n) * zipf.Prob(popPerm[i])
			rate *= 0.5 + 0.5*factor // blend to avoid zero-rate tails
		}
		payload := c.PayloadKB
		if c.PayloadSigma > 0 {
			payload = c.PayloadKB * src.LogNormal(0, c.PayloadSigma)
		}
		devices[i] = Device{
			ID:           i,
			RateHz:       rate,
			PayloadKB:    payload,
			ComputeUnits: c.ComputeUnits,
			DeadlineMs:   c.DeadlineMs,
			Bursty:       src.Bernoulli(c.BurstProb),
		}
	}
	return devices, nil
}

// TotalLoad sums the steady-state load of a population.
func TotalLoad(devices []Device) float64 {
	total := 0.0
	for _, d := range devices {
		total += d.Load()
	}
	return total
}

// Arrivals produces a stream of inter-arrival gaps (milliseconds).
type Arrivals interface {
	// NextGapMs returns the time to the next request.
	NextGapMs() float64
}

// Poisson is a memoryless arrival process at the given rate.
type Poisson struct {
	rateHz float64
	src    *xrand.Source
}

// NewPoisson returns a Poisson arrival stream; rateHz must be positive.
func NewPoisson(rateHz float64, src *xrand.Source) (*Poisson, error) {
	if rateHz <= 0 {
		return nil, fmt.Errorf("workload: Poisson rate must be positive, got %v", rateHz)
	}
	return &Poisson{rateHz: rateHz, src: src}, nil
}

// NextGapMs returns an exponential gap with mean 1000/rate.
func (p *Poisson) NextGapMs() float64 {
	return p.src.Exponential(p.rateHz) * 1000
}

// MMPP is a two-state Markov-modulated Poisson process: the stream
// alternates between a quiet state and a burst state with a higher rate.
// The overall mean rate matches the configured rate.
type MMPP struct {
	quietRateHz float64
	burstRateHz float64
	// meanQuietMs / meanBurstMs are the mean sojourn times.
	meanQuietMs float64
	meanBurstMs float64

	inBurst     bool
	stateLeftMs float64
	src         *xrand.Source
}

// NewMMPP builds a bursty stream with overall mean rateHz. burstFactor > 1
// scales the burst-state rate; duty in (0,1) is the fraction of time spent
// bursting; cycleMs is the mean burst+quiet cycle length.
func NewMMPP(rateHz, burstFactor, duty, cycleMs float64, src *xrand.Source) (*MMPP, error) {
	if rateHz <= 0 || burstFactor <= 1 || duty <= 0 || duty >= 1 || cycleMs <= 0 {
		return nil, fmt.Errorf("workload: invalid MMPP params rate=%v factor=%v duty=%v cycle=%v",
			rateHz, burstFactor, duty, cycleMs)
	}
	burst := rateHz * burstFactor
	// Solve quiet rate so the time-weighted mean equals rateHz:
	// duty*burst + (1-duty)*quiet = rate.
	quiet := (rateHz - duty*burst) / (1 - duty)
	if quiet < 0 {
		quiet = rateHz / (burstFactor * 10) // heavy burst: nearly silent quiet state
	}
	if quiet <= 0 {
		quiet = 1e-6
	}
	m := &MMPP{
		quietRateHz: quiet,
		burstRateHz: burst,
		meanQuietMs: cycleMs * (1 - duty),
		meanBurstMs: cycleMs * duty,
		src:         src,
	}
	m.stateLeftMs = src.Exponential(1 / m.meanQuietMs) // start quiet
	return m, nil
}

// NextGapMs returns the gap to the next arrival, advancing the modulating
// state as virtual time passes.
func (m *MMPP) NextGapMs() float64 {
	elapsed := 0.0
	for {
		rate := m.quietRateHz
		if m.inBurst {
			rate = m.burstRateHz
		}
		gap := m.src.Exponential(rate) * 1000
		if gap <= m.stateLeftMs {
			m.stateLeftMs -= gap
			return elapsed + gap
		}
		// State flips before the arrival: consume the remaining
		// sojourn and resample in the new state.
		elapsed += m.stateLeftMs
		m.inBurst = !m.inBurst
		mean := m.meanQuietMs
		if m.inBurst {
			mean = m.meanBurstMs
		}
		m.stateLeftMs = m.src.Exponential(1 / mean)
	}
}

// NewArrivals returns the arrival process matching the device profile:
// MMPP for bursty devices, Poisson otherwise.
func NewArrivals(d Device, src *xrand.Source) (Arrivals, error) {
	if d.Bursty {
		return NewMMPP(d.RateHz, 5, 0.2, 10_000, src)
	}
	return NewPoisson(d.RateHz, src)
}
