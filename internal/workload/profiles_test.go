package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestPresetsGenerate(t *testing.T) {
	for name, p := range Profiles(3) {
		devs, err := Generate(50, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(devs) != 50 {
			t.Fatalf("%s: %d devices", name, len(devs))
		}
		if TotalLoad(devs) <= 0 {
			t.Fatalf("%s: non-positive total load", name)
		}
	}
}

func TestPresetsDiffer(t *testing.T) {
	factory, err := Generate(100, FactoryProfile(1))
	if err != nil {
		t.Fatal(err)
	}
	wearables, err := Generate(100, WearablesProfile(1))
	if err != nil {
		t.Fatal(err)
	}
	// Factory telemetry is far heavier than wearables.
	if TotalLoad(factory) < 5*TotalLoad(wearables) {
		t.Fatalf("factory load %v should dwarf wearables %v",
			TotalLoad(factory), TotalLoad(wearables))
	}
}

func TestDevicesJSONRoundTrip(t *testing.T) {
	devs, err := Generate(20, SmartCityProfile(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDevicesJSON(&buf, devs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDevicesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(devs) {
		t.Fatalf("round trip length %d", len(got))
	}
	for i := range devs {
		if got[i] != devs[i] {
			t.Fatalf("device %d mismatch: %+v vs %+v", i, got[i], devs[i])
		}
	}
}

func TestReadDevicesJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":  "{",
		"empty":    "[]",
		"bad rate": `[{"ID":0,"RateHz":0,"ComputeUnits":1}]`,
	}
	for name, in := range cases {
		if _, err := ReadDevicesJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
