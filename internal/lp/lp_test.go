package lp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"taccc/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
	}{
		{"empty objective", Problem{}},
		{"eq rhs mismatch", Problem{C: []float64{1}, Aeq: [][]float64{{1}}, Beq: nil}},
		{"ub rhs mismatch", Problem{C: []float64{1}, Aub: [][]float64{{1}}, Bub: nil}},
		{"eq width", Problem{C: []float64{1, 2}, Aeq: [][]float64{{1}}, Beq: []float64{1}}},
		{"ub width", Problem{C: []float64{1, 2}, Aub: [][]float64{{1}}, Bub: []float64{1}}},
	}
	for _, tc := range cases {
		if _, err := Solve(tc.p, 0); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSimpleInequality(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 2, y <= 3 -> x=1? Optimal: y=3,
	// x=1, obj = -7.
	sol, err := Solve(Problem{
		C:   []float64{-1, -2},
		Aub: [][]float64{{1, 1}, {1, 0}, {0, 1}},
		Bub: []float64{4, 2, 3},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, -7, 1e-9) {
		t.Fatalf("objective = %v, want -7", sol.Objective)
	}
	if !almost(sol.X[0], 1, 1e-9) || !almost(sol.X[1], 3, 1e-9) {
		t.Fatalf("X = %v, want [1 3]", sol.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x <= 4 -> x=4, y=6, obj=16.
	sol, err := Solve(Problem{
		C:   []float64{1, 2},
		Aeq: [][]float64{{1, 1}},
		Beq: []float64{10},
		Aub: [][]float64{{1, 0}},
		Bub: []float64{4},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 16, 1e-9) {
		t.Fatalf("objective = %v, want 16", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (x >= 3) -> x=3.
	sol, err := Solve(Problem{
		C:   []float64{1},
		Aub: [][]float64{{-1}},
		Bub: []float64{-3},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.X[0], 3, 1e-9) {
		t.Fatalf("X = %v, want [3]", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x = 5 and x <= 1.
	_, err := Solve(Problem{
		C:   []float64{1},
		Aeq: [][]float64{{1}},
		Beq: []float64{5},
		Aub: [][]float64{{1}},
		Bub: []float64{1},
	}, 0)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x >= 0 unconstrained above.
	_, err := Solve(Problem{
		C:   []float64{-1},
		Aub: [][]float64{{-1}},
		Bub: []float64{0},
	}, 0)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestIterationLimit(t *testing.T) {
	_, err := Solve(Problem{
		C:   []float64{-1, -2, -3},
		Aub: [][]float64{{1, 1, 1}, {1, 2, 1}, {2, 1, 3}},
		Bub: []float64{10, 12, 15},
	}, 1)
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("want ErrIterationLimit, got %v", err)
	}
}

func TestDegenerateTies(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	sol, err := Solve(Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		Aub: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		Bub: []float64{0, 0, 1},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, -0.05, 1e-9) {
		t.Fatalf("objective = %v, want -0.05 (Beale's example)", sol.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (3, 4), 2 demands (5, 2); costs [[1,4],[2,1]].
	// Variables x11 x12 x21 x22.
	// Optimal: x11=3, x21=2, x22=2 -> 3 + 4 + 2 = 9.
	sol, err := Solve(Problem{
		C: []float64{1, 4, 2, 1},
		Aeq: [][]float64{
			{1, 0, 1, 0}, // demand 1 = 5
			{0, 1, 0, 1}, // demand 2 = 2
		},
		Beq: []float64{5, 2},
		Aub: [][]float64{
			{1, 1, 0, 0}, // supply 1 <= 3
			{0, 0, 1, 1}, // supply 2 <= 4
		},
		Bub: []float64{3, 4},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 9, 1e-9) {
		t.Fatalf("objective = %v, want 9", sol.Objective)
	}
}

// Property: on random feasible bounded LPs (min c·x, 0 <= x, x <= u,
// Σx >= s with s <= Σu), the solution respects all constraints and has
// objective <= any sampled feasible point.
func TestRandomBoundedLPQuick(t *testing.T) {
	f := func(seed int64) bool {
		src := xrand.New(seed)
		n := src.UniformInt(2, 6)
		c := make([]float64, n)
		u := make([]float64, n)
		for i := range c {
			c[i] = src.Uniform(-5, 5)
			u[i] = src.Uniform(0.5, 4)
		}
		// Constraints: x_i <= u_i.
		var aub [][]float64
		var bub []float64
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			aub = append(aub, row)
			bub = append(bub, u[i])
		}
		sol, err := Solve(Problem{C: c, Aub: aub, Bub: bub}, 0)
		if err != nil {
			return false
		}
		// Constraint satisfaction.
		for i := 0; i < n; i++ {
			if sol.X[i] < -1e-7 || sol.X[i] > u[i]+1e-7 {
				return false
			}
		}
		// The analytic optimum: x_i = u_i when c_i < 0 else 0.
		want := 0.0
		for i := 0; i < n; i++ {
			if c[i] < 0 {
				want += c[i] * u[i]
			}
		}
		return almost(sol.Objective, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a redundant constraint never changes the optimum.
func TestRedundantConstraintQuick(t *testing.T) {
	f := func(seed int64) bool {
		src := xrand.New(seed)
		c := []float64{src.Uniform(0.1, 3), src.Uniform(0.1, 3), src.Uniform(0.1, 3)}
		// min c·x with Σx = 6, x_i <= 5.
		base := Problem{
			C:   c,
			Aeq: [][]float64{{1, 1, 1}},
			Beq: []float64{6},
			Aub: [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
			Bub: []float64{5, 5, 5},
		}
		s1, err := Solve(base, 0)
		if err != nil {
			return false
		}
		// Redundant: Σx <= 100.
		base.Aub = append(base.Aub, []float64{1, 1, 1})
		base.Bub = append(base.Bub, 100)
		s2, err := Solve(base, 0)
		if err != nil {
			return false
		}
		return almost(s1.Objective, s2.Objective, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
