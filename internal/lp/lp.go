// Package lp is a small dense linear-programming solver (two-phase primal
// simplex with Bland's anti-cycling rule). It exists to compute the LP
// relaxation of the Generalized Assignment Problem — the strongest lower
// bound in internal/gap — and to drive the LP-rounding baseline in
// internal/assign. It handles problems of the form
//
//	minimize    c·x
//	subject to  Aeq·x  = beq
//	            Aub·x <= bub
//	            x >= 0
//
// Dense tableau simplex is O(rows·cols) per pivot, which is plenty for the
// instance sizes evaluated here (hundreds of constraints, thousands of
// variables); it is not intended as a general-purpose LP library.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when the constraints admit no solution.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrIterationLimit is returned when the pivot budget is exhausted.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// Problem is an LP in the standard form documented on the package.
type Problem struct {
	// C is the objective vector (length = number of variables).
	C []float64
	// Aeq/Beq are the equality constraints (may be empty).
	Aeq [][]float64
	Beq []float64
	// Aub/Bub are the <= constraints (may be empty).
	Aub [][]float64
	Bub []float64
}

// Solution holds an optimal basic feasible solution.
type Solution struct {
	// X is the optimal variable assignment.
	X []float64
	// Objective is c·X.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

const eps = 1e-9

func (p Problem) validate() (nVars int, err error) {
	nVars = len(p.C)
	if nVars == 0 {
		return 0, errors.New("lp: empty objective")
	}
	if len(p.Aeq) != len(p.Beq) {
		return 0, fmt.Errorf("lp: %d equality rows but %d rhs entries", len(p.Aeq), len(p.Beq))
	}
	if len(p.Aub) != len(p.Bub) {
		return 0, fmt.Errorf("lp: %d inequality rows but %d rhs entries", len(p.Aub), len(p.Bub))
	}
	for i, row := range p.Aeq {
		if len(row) != nVars {
			return 0, fmt.Errorf("lp: equality row %d has %d cols, want %d", i, len(row), nVars)
		}
	}
	for i, row := range p.Aub {
		if len(row) != nVars {
			return 0, fmt.Errorf("lp: inequality row %d has %d cols, want %d", i, len(row), nVars)
		}
	}
	return nVars, nil
}

// Solve optimizes the problem. maxIters caps total pivots (0 means
// 50*(rows+cols)).
func Solve(p Problem, maxIters int) (*Solution, error) {
	nVars, err := p.validate()
	if err != nil {
		return nil, err
	}
	nEq, nUb := len(p.Aeq), len(p.Aub)
	rows := nEq + nUb

	// Columns: original vars | slacks (one per <=) | artificials.
	// Artificials are added for every equality row and for any <= row
	// with negative rhs (after sign normalization all rhs are >= 0, and
	// slack columns serve as the initial basis for <= rows).
	nSlack := nUb
	// Build the constraint matrix with rhs normalized non-negative.
	a := make([][]float64, rows)
	b := make([]float64, rows)
	needArt := make([]bool, rows)
	for i := 0; i < nEq; i++ {
		r := make([]float64, nVars+nSlack)
		copy(r, p.Aeq[i])
		rhs := p.Beq[i]
		if rhs < 0 {
			for j := range r {
				r[j] = -r[j]
			}
			rhs = -rhs
		}
		a[i], b[i] = r, rhs
		needArt[i] = true
	}
	for i := 0; i < nUb; i++ {
		r := make([]float64, nVars+nSlack)
		copy(r, p.Aub[i])
		rhs := p.Bub[i]
		slackSign := 1.0
		if rhs < 0 {
			for j := range r {
				r[j] = -r[j]
			}
			rhs = -rhs
			slackSign = -1.0 // the slack becomes a surplus
		}
		r[nVars+i] = slackSign
		row := nEq + i
		a[row], b[row] = r, rhs
		// A surplus column (coefficient -1) cannot start in the
		// basis, so such rows need an artificial too.
		needArt[row] = slackSign < 0
	}
	nArt := 0
	artCol := make([]int, rows)
	for i := range artCol {
		artCol[i] = -1
		if needArt[i] {
			artCol[i] = nVars + nSlack + nArt
			nArt++
		}
	}
	totalCols := nVars + nSlack + nArt
	// Extend rows with artificial columns.
	for i := range a {
		r := make([]float64, totalCols)
		copy(r, a[i])
		if artCol[i] >= 0 {
			r[artCol[i]] = 1
		}
		a[i] = r
	}
	// Initial basis: slack for plain <= rows, artificial elsewhere.
	basis := make([]int, rows)
	for i := 0; i < rows; i++ {
		if artCol[i] >= 0 {
			basis[i] = artCol[i]
		} else {
			basis[i] = nVars + (i - nEq)
		}
	}

	if maxIters <= 0 {
		maxIters = 50 * (rows + totalCols)
	}
	iters := 0

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := make([]float64, totalCols)
		for i := range artCol {
			if artCol[i] >= 0 {
				phase1[artCol[i]] = 1
			}
		}
		obj, n, err := simplex(a, b, basis, phase1, maxIters)
		iters += n
		if err != nil {
			return nil, err
		}
		if obj > eps*float64(rows+1) {
			return nil, ErrInfeasible
		}
		// Drive any artificial still in the basis out (degenerate
		// rows) or at least ensure it stays at zero; the easiest
		// sound handling is to pivot on any non-artificial column
		// with a nonzero entry, otherwise the row is redundant and
		// harmless since its basic value is ~0.
		for i, bc := range basis {
			if bc < nVars+nSlack {
				continue
			}
			for j := 0; j < nVars+nSlack; j++ {
				if math.Abs(a[i][j]) > eps {
					pivot(a, b, basis, i, j)
					iters++
					break
				}
			}
		}
	}

	// Phase 2: original objective (zero cost on slacks/artificials, and
	// artificials are forbidden from re-entering by a huge cost guard in
	// entering-column selection below — simpler: strip them by giving
	// them +inf reduced cost via cost = 0 and blocking entry).
	phase2 := make([]float64, totalCols)
	copy(phase2, p.C)
	blocked := make([]bool, totalCols)
	for i := nVars + nSlack; i < totalCols; i++ {
		blocked[i] = true
	}
	obj, n, err := simplexBlocked(a, b, basis, phase2, blocked, maxIters-iters)
	iters += n
	if err != nil {
		return nil, err
	}

	x := make([]float64, nVars)
	for i, bc := range basis {
		if bc < nVars {
			x[bc] = b[i]
		}
	}
	return &Solution{X: x, Objective: obj, Iterations: iters}, nil
}

// simplex runs primal simplex minimizing cost over the tableau; returns the
// objective value.
func simplex(a [][]float64, b []float64, basis []int, cost []float64, maxIters int) (float64, int, error) {
	return simplexBlocked(a, b, basis, cost, nil, maxIters)
}

// simplexBlocked is simplex with an optional column blacklist.
func simplexBlocked(a [][]float64, b []float64, basis []int, cost []float64, blocked []bool, maxIters int) (float64, int, error) {
	rows := len(a)
	if rows == 0 {
		return 0, 0, nil
	}
	cols := len(a[0])
	iters := 0
	for {
		if iters >= maxIters {
			return 0, iters, ErrIterationLimit
		}
		// Reduced costs: rc_j = c_j - cB · B^-1 A_j. With the full
		// tableau kept in canonical form, rc_j = c_j - Σ_i c_basis[i]
		// * a[i][j].
		entering := -1
		for j := 0; j < cols; j++ {
			if blocked != nil && blocked[j] {
				continue
			}
			rc := cost[j]
			for i := 0; i < rows; i++ {
				if cb := cost[basis[i]]; cb != 0 {
					rc -= cb * a[i][j]
				}
			}
			if rc < -eps {
				entering = j // Bland: first improving index
				break
			}
		}
		if entering == -1 {
			obj := 0.0
			for i := 0; i < rows; i++ {
				obj += cost[basis[i]] * b[i]
			}
			return obj, iters, nil
		}
		// Ratio test (Bland: smallest basis index on ties).
		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < rows; i++ {
			if a[i][entering] > eps {
				ratio := b[i] / a[i][entering]
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leaving == -1 || basis[i] < basis[leaving])) {
					bestRatio = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return 0, iters, ErrUnbounded
		}
		pivot(a, b, basis, leaving, entering)
		iters++
	}
}

// pivot performs a Gauss-Jordan pivot making column col basic in row row.
func pivot(a [][]float64, b []float64, basis []int, row, col int) {
	p := a[row][col]
	for j := range a[row] {
		a[row][j] /= p
	}
	b[row] /= p
	for i := range a {
		if i == row {
			continue
		}
		f := a[i][col]
		if f == 0 {
			continue
		}
		for j := range a[i] {
			a[i][j] -= f * a[row][j]
		}
		b[i] -= f * b[row]
		if b[i] < 0 && b[i] > -eps {
			b[i] = 0
		}
	}
	basis[row] = col
}
