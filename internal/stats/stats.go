// Package stats provides the small statistical toolkit used by the
// simulator and the experiment harness: streaming moments (Welford),
// quantiles over collected samples, fixed-width histograms and normal-theory
// confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean, or 0 if no samples were added.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest sample, or 0 if no samples were added.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample, or 0 if no samples were added.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean, or 0 for no samples.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of a normal-theory 95% confidence interval for
// the mean.
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Merge folds another accumulator into this one using Chan et al.'s
// parallel-variance formula.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// Sample collects raw observations for exact quantile queries. The zero
// value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks. It returns 0 for an empty sample and panics for q
// outside [0, 1].
func (s *Sample) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P95 returns the 0.95 quantile.
func (s *Sample) P95() float64 { return s.Quantile(0.95) }

// P99 returns the 0.99 quantile.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Values returns a copy of the observations in insertion-then-sorted order;
// callers own the returned slice.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Histogram counts observations into fixed-width bins over [lo, hi).
// Observations outside the range are clamped into the first or last bin so
// no data is silently dropped.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram returns a histogram with the given bounds and bin count. It
// panics if hi <= lo or bins <= 0.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.n++
}

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// BinBounds returns the [lo, hi) bounds of bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	width := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*width, h.lo + float64(i+1)*width
}
