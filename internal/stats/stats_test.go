package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance is
	// 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("zero-value Welford should report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatalf("single-sample Welford: mean %v var %v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 20, 30, -5, 0.5, 7, 7, 7}
	var all Welford
	for _, x := range xs {
		all.Add(x)
	}
	var a, b Welford
	for i, x := range xs {
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Fatalf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merged variance %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(&b) // empty into empty: no-op
	if a.N() != 0 {
		t.Fatal("merging empties should stay empty")
	}
	b.Add(5)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merging into empty should copy")
	}
	var c Welford
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merging empty changed accumulator")
	}
}

// Property: Welford merge equals sequential accumulation for random splits.
func TestWelfordMergeQuick(t *testing.T) {
	f := func(xs []float64, splitRaw uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		split := int(splitRaw) % (len(xs) + 1)
		var all, a, b Welford
		for i, x := range xs {
			all.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		scale := 1.0 + math.Abs(all.Mean()) + all.Variance()
		return almostEqual(a.Mean(), all.Mean(), 1e-6*scale) &&
			almostEqual(a.Variance(), all.Variance(), 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); !almostEqual(got, 50.5, 1e-9) {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v, want 100", got)
	}
	if got := s.P95(); !almostEqual(got, 95.05, 1e-9) {
		t.Fatalf("p95 = %v, want 95.05", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleQuantilePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			s.Quantile(q)
		}()
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(3)
	if got := s.Median(); got != 3 {
		t.Fatalf("median after re-add = %v, want 3", got)
	}
}

func TestSampleValuesIsCopy(t *testing.T) {
	var s Sample
	s.Add(1)
	v := s.Values()
	v[0] = 99
	if s.Quantile(0) == 99 {
		t.Fatal("Values leaked internal storage")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestSampleQuantileMonotoneQuick(t *testing.T) {
	f := func(xs []float64, qa, qb uint8) bool {
		var s Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if s.N() == 0 {
			return true
		}
		q1 := float64(qa) / 255
		q2 := float64(qb) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := s.Quantile(q1), s.Quantile(q2)
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.999, -4, 42} {
		h.Add(x)
	}
	bins := h.Bins()
	want := []int{3, 1, 1, 0, 2} // -4 clamps to bin 0, 42 clamps to bin 4
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BinBounds(1) = [%v, %v), want [2, 4)", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		bins   int
	}{{0, 0, 3}, {5, 1, 3}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.bins)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.bins)
		}()
	}
}

func TestHistogramBinsIsCopy(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	b := h.Bins()
	b[0] = 99
	if h.Bins()[0] == 99 {
		t.Fatal("Bins leaked internal storage")
	}
}

func TestCI95ShrinksWithSamples(t *testing.T) {
	var small, large Welford
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 should shrink: small %v, large %v", small.CI95(), large.CI95())
	}
}
