//go:build race

package assign

// raceEnabled reports whether the race detector instruments this build.
// Alloc-count pins are skipped under -race: the instrumented runtime
// allocates shadow state on its own schedule, so AllocsPerRun deltas
// stop measuring the code under test.
const raceEnabled = true
