package assign

import "taccc/internal/xrand"

// newTestSource returns a fixed-seed source for repair tests.
func newTestSource() *xrand.Source { return xrand.New(12345) }
