package assign

import (
	"fmt"
	"math"
	"sort"

	"taccc/internal/gap"
	"taccc/internal/xrand"
)

// LPRounding solves the instance's linear relaxation and rounds the
// fractional solution: devices that the LP assigns integrally keep their
// edge; fractional devices are placed (heaviest first) on the edge with
// the largest LP mass that still has residual capacity, with greedy
// fallback and the shared repair operator as a safety net. A classical
// LP-guided baseline in the spirit of Shmoys–Tardos.
type LPRounding struct {
	seed int64
}

// NewLPRounding returns an LP-rounding assigner.
func NewLPRounding(seed int64) *LPRounding { return &LPRounding{seed: seed} }

// Name implements Assigner.
func (*LPRounding) Name() string { return "lp-rounding" }

// Assign implements Assigner.
func (lr *LPRounding) Assign(in *gap.Instance) (*gap.Assignment, error) {
	x, _, err := gap.LPRelaxation(in)
	if err != nil {
		return nil, fmt.Errorf("assign/lp-rounding: %w", err)
	}
	n, m := in.N(), in.M()
	of := make([]int, n)
	residual := residuals(in)
	const integral = 1 - 1e-6

	// Pass 1: lock in integral assignments.
	var fractional []int
	for i := 0; i < n; i++ {
		placed := false
		for j := 0; j < m; j++ {
			if x[i][j] >= integral {
				of[i] = j
				residual[j] -= in.Weight[i][j]
				placed = true
				break
			}
		}
		if !placed {
			of[i] = -1
			fractional = append(fractional, i)
		}
	}
	// Pass 2: fractional devices, heaviest first, follow their largest
	// feasible LP mass.
	sort.SliceStable(fractional, func(a, b int) bool {
		return maxWeight(in, fractional[a]) > maxWeight(in, fractional[b])
	})
	for _, i := range fractional {
		best, bestMass := -1, 0.0
		for j := 0; j < m; j++ {
			if x[i][j] > bestMass && fits(in, residual, i, j) {
				best, bestMass = j, x[i][j]
			}
		}
		if best < 0 {
			best = cheapestFeasible(in, residual, i)
		}
		if best < 0 {
			// Leave unplaced; the repair pass below gets one more
			// chance by relocating other devices.
			continue
		}
		of[i] = best
		residual[best] -= in.Weight[i][best]
	}
	for _, i := range fractional {
		if of[i] >= 0 {
			continue
		}
		src := xrand.NewSplit(lr.seed, "lp-repair")
		if !newRepairState(in).repair(in, of, src) {
			return nil, fmt.Errorf("assign/lp-rounding: rounding could not restore capacity: %w", gap.ErrInfeasible)
		}
		break
	}
	return finish(in, of, "lp-rounding")
}

func maxWeight(in *gap.Instance, i int) float64 {
	max := 0.0
	for j := 0; j < in.M(); j++ {
		if w := in.Weight[i][j]; !math.IsInf(w, 0) && w > max {
			max = w
		}
	}
	return max
}
