package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/xrand"
)

// DoubleQLearning is the double-estimator variant of the RL assigner: two
// Q tables are updated alternately, each using the other to evaluate its
// argmax, which removes the positive maximization bias of plain Q-learning
// (van Hasselt, 2010). Part of the F8 ablation.
type DoubleQLearning struct {
	// Params tunes learning; zero fields take defaults.
	Params RLParams
	seed   int64
}

// NewDoubleQLearning returns a double Q-learning assigner.
func NewDoubleQLearning(seed int64) *DoubleQLearning { return &DoubleQLearning{seed: seed} }

// Name implements Assigner.
func (*DoubleQLearning) Name() string { return "double-qlearning" }

// Assign implements Assigner.
func (dq *DoubleQLearning) Assign(in *gap.Instance) (*gap.Assignment, error) {
	p := dq.Params.withDefaults()
	src := xrand.NewSplit(dq.seed, "double-q")
	env := newMDP(in, p.LoadLevels)
	tableA := make(qtable, p.Episodes)
	tableB := make(qtable, p.Episodes)
	var actBuf, nextBuf []int
	sumRow := make([]float64, in.M())

	bestOf := make([]int, in.N())
	bestCost := math.Inf(1)
	found := false
	of := make([]int, in.N())

	if c, ok := greedyRollout(env, tableA, of); ok {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !p.NoWarmStart {
		if c, warm := warmStart(in); warm != nil && c < bestCost {
			bestCost = c
			copy(bestOf, warm)
			found = true
		}
	}

	eps := p.Epsilon0
	for ep := 0; ep < p.Episodes; ep++ {
		env.reset()
		cost := 0.0
		feasibleRun := true
		for !env.done() {
			key := env.stateKey()
			actBuf = env.feasibleActions(actBuf)
			if len(actBuf) == 0 {
				feasibleRun = false
				break
			}
			rowA := tableA.row(key, env.rowInit[env.step])
			rowB := tableB.row(key, env.rowInit[env.step])
			// Behaviour policy acts on the sum of the two tables.
			for j := range sumRow {
				sumRow[j] = rowA[j] + rowB[j]
			}
			a := epsGreedy(sumRow, actBuf, eps, src)
			i := env.device()
			r := env.take(a)
			cost -= r
			of[i] = a

			// Flip a coin: update one table using the other as
			// the evaluator of its own argmax.
			updateA := src.Bernoulli(0.5)
			upd := rowA
			if !updateA {
				upd = rowB
			}
			var target float64
			if env.done() {
				target = r
			} else {
				nextBuf = env.feasibleActions(nextBuf)
				if len(nextBuf) == 0 {
					target = r - deadEndPenalty(in)
					feasibleRun = false
				} else {
					nk := env.stateKey()
					nA := tableA.row(nk, env.rowInit[env.step])
					nB := tableB.row(nk, env.rowInit[env.step])
					nUpd, nEval := nA, nB
					if !updateA {
						nUpd, nEval = nB, nA
					}
					am, _ := bestQ(nUpd, nextBuf)
					target = r + p.Gamma*nEval[am]
				}
			}
			upd[a] += p.Alpha * (target - upd[a])
			if !feasibleRun {
				break
			}
		}
		if feasibleRun && cost < bestCost {
			bestCost = cost
			copy(bestOf, of)
			found = true
		}
		eps *= p.EpsilonDecay
		if eps < p.EpsilonMin {
			eps = p.EpsilonMin
		}
	}
	if !found {
		return nil, fmt.Errorf("assign/double-qlearning: no feasible episode in %d attempts: %w", p.Episodes, gap.ErrInfeasible)
	}
	return finish(in, bestOf, "double-qlearning")
}

// ExpectedSARSA replaces the SARSA sample of the next action with its
// expectation under the epsilon-greedy policy, reducing update variance.
// Part of the F8 ablation.
type ExpectedSARSA struct {
	// Params tunes learning; zero fields take defaults.
	Params RLParams
	seed   int64
}

// NewExpectedSARSA returns an expected-SARSA assigner.
func NewExpectedSARSA(seed int64) *ExpectedSARSA { return &ExpectedSARSA{seed: seed} }

// Name implements Assigner.
func (*ExpectedSARSA) Name() string { return "expected-sarsa" }

// Assign implements Assigner.
func (es *ExpectedSARSA) Assign(in *gap.Instance) (*gap.Assignment, error) {
	p := es.Params.withDefaults()
	src := xrand.NewSplit(es.seed, "expected-sarsa")
	env := newMDP(in, p.LoadLevels)
	table := make(qtable, p.Episodes)
	var actBuf, nextBuf []int

	bestOf := make([]int, in.N())
	bestCost := math.Inf(1)
	found := false
	of := make([]int, in.N())

	if c, ok := greedyRollout(env, table, of); ok {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !p.NoWarmStart {
		if c, warm := warmStart(in); warm != nil && c < bestCost {
			bestCost = c
			copy(bestOf, warm)
			found = true
		}
	}

	eps := p.Epsilon0
	for ep := 0; ep < p.Episodes; ep++ {
		env.reset()
		cost := 0.0
		feasibleRun := true
		for !env.done() {
			key := env.stateKey()
			actBuf = env.feasibleActions(actBuf)
			if len(actBuf) == 0 {
				feasibleRun = false
				break
			}
			row := table.row(key, env.rowInit[env.step])
			a := epsGreedy(row, actBuf, eps, src)
			i := env.device()
			r := env.take(a)
			cost -= r
			of[i] = a

			var target float64
			if env.done() {
				target = r
			} else {
				nextBuf = env.feasibleActions(nextBuf)
				if len(nextBuf) == 0 {
					target = r - deadEndPenalty(in)
					feasibleRun = false
				} else {
					nextRow := table.row(env.stateKey(), env.rowInit[env.step])
					target = r + p.Gamma*expectedValue(nextRow, nextBuf, eps)
				}
			}
			row[a] += p.Alpha * (target - row[a])
			if !feasibleRun {
				break
			}
		}
		if feasibleRun && cost < bestCost {
			bestCost = cost
			copy(bestOf, of)
			found = true
		}
		eps *= p.EpsilonDecay
		if eps < p.EpsilonMin {
			eps = p.EpsilonMin
		}
	}
	if !found {
		return nil, fmt.Errorf("assign/expected-sarsa: no feasible episode in %d attempts: %w", p.Episodes, gap.ErrInfeasible)
	}
	return finish(in, bestOf, "expected-sarsa")
}

// expectedValue computes E[Q(s', A')] under an epsilon-greedy policy that
// explores uniformly over the feasible set (a simplification of the
// softmax behaviour, adequate as an update target).
func expectedValue(row []float64, feasible []int, eps float64) float64 {
	_, best := bestQ(row, feasible)
	mean := 0.0
	for _, a := range feasible {
		mean += row[a]
	}
	mean /= float64(len(feasible))
	return (1-eps)*best + eps*mean
}
