package assign

import (
	"errors"
	"reflect"
	"testing"

	"taccc/internal/gap"
)

// Focused tests for the metaheuristics and RL variants beyond the shared
// contract tests in assign_test.go.

func TestTabuNeverWorseThanStart(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 25, 5, 0.85, seed)
		start, err := startFeasible(in, seed)
		if err != nil {
			continue
		}
		got, err := NewTabuSearch(seed).Assign(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.TotalCost(got) > in.TotalCost(start)+1e-9 {
			t.Fatalf("seed %d: tabu (%v) worse than start (%v)",
				seed, in.TotalCost(got), in.TotalCost(start))
		}
	}
}

func TestTabuEscapesLocalOptimum(t *testing.T) {
	// A crafted instance where hill climbing from greedy is stuck but a
	// worsening move unlocks a better packing:
	// device 0 sits on edge 0 (cost 1); moving it to edge 1 (cost 2)
	// frees capacity for device 1 to move from edge 1 (cost 10) to edge
	// 0 (cost 1): total 12 -> 3. A shift-only hill climb can do this
	// too via the swap move, so block the swap by unequal weights.
	in, err := gap.NewInstance(
		[][]float64{
			{1, 2},  // device 0, weight 2
			{10, 1}, // device 1 (cost 1 on edge *0*? see below)
		},
		[][]float64{{2, 2}, {3, 3}},
		[]float64{3, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force optimum as the oracle.
	opt, err := gap.BruteForce(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewTabuSearch(1).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if in.TotalCost(got) > in.TotalCost(opt)+1e-9 {
		t.Fatalf("tabu %v, optimum %v", in.TotalCost(got), in.TotalCost(opt))
	}
}

func TestLNSNeverWorseThanStart(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := mustSynthetic(t, gap.SyntheticUniform, 30, 5, 0.8, seed)
		start, err := startFeasible(in, seed)
		if err != nil {
			continue
		}
		got, err := NewLNS(seed).Assign(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.TotalCost(got) > in.TotalCost(start)+1e-9 {
			t.Fatalf("seed %d: LNS (%v) worse than start (%v)",
				seed, in.TotalCost(got), in.TotalCost(start))
		}
	}
}

func TestLNSDeterministic(t *testing.T) {
	// Regression: regretReinsert used to pick the max-regret device by
	// iterating a map, so regret ties broke in random map order and LNS
	// returned different assignments run-to-run for the same seed.
	for seed := int64(0); seed < 6; seed++ {
		in := mustSynthetic(t, gap.SyntheticUniform, 40, 5, 0.85, seed)
		first, err := NewLNS(seed).Assign(in)
		if err != nil {
			continue
		}
		for run := 0; run < 3; run++ {
			again, err := NewLNS(seed).Assign(in)
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, run, err)
			}
			if !reflect.DeepEqual(first.Of, again.Of) {
				t.Fatalf("seed %d run %d: LNS not deterministic:\n%v\n%v",
					seed, run, first.Of, again.Of)
			}
		}
	}
}

func TestRLVariantsNeverWorseThanWarmStart(t *testing.T) {
	// All RL assigners are seeded with the regret-greedy warm start, so
	// they can never return anything worse.
	for seed := int64(0); seed < 5; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 20, 4, 0.85, seed)
		warm, err := NewRegretGreedy().Assign(in)
		if err != nil {
			continue
		}
		warmCost := in.TotalCost(warm)
		for _, a := range []Assigner{
			NewQLearning(seed), NewSARSA(seed),
			NewExpectedSARSA(seed), NewDoubleQLearning(seed),
		} {
			got, err := a.Assign(in)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name(), seed, err)
			}
			if in.TotalCost(got) > warmCost+1e-9 {
				t.Fatalf("%s seed %d: %v worse than warm start %v",
					a.Name(), seed, in.TotalCost(got), warmCost)
			}
		}
	}
}

func TestRLVariantsInfeasible(t *testing.T) {
	in := infeasibleInstance(t)
	for _, a := range []Assigner{
		NewExpectedSARSA(1), NewDoubleQLearning(1), NewTabuSearch(1), NewLNS(1),
	} {
		if _, err := a.Assign(in); !errors.Is(err, gap.ErrInfeasible) {
			t.Errorf("%s: want ErrInfeasible, got %v", a.Name(), err)
		}
	}
}

func TestExpectedValue(t *testing.T) {
	row := []float64{-5, -1, -3}
	feasible := []int{0, 1, 2}
	// eps=0: pure max = -1.
	if got := expectedValue(row, feasible, 0); got != -1 {
		t.Fatalf("expectedValue(eps=0) = %v, want -1", got)
	}
	// eps=1: uniform mean = -3.
	if got := expectedValue(row, feasible, 1); got != -3 {
		t.Fatalf("expectedValue(eps=1) = %v, want -3", got)
	}
	// Masked action not counted.
	if got := expectedValue(row, []int{1, 2}, 1); got != -2 {
		t.Fatalf("expectedValue masked = %v, want -2", got)
	}
}

func TestTabuTenureConfigurable(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticUniform, 15, 3, 0.8, 2)
	ts := NewTabuSearch(2)
	ts.Iters = 50
	ts.Tenure = 5
	if _, err := ts.Assign(in); err != nil {
		t.Fatal(err)
	}
}

func TestLNSDestroyFracBounds(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticUniform, 15, 3, 0.8, 2)
	l := NewLNS(2)
	l.DestroyFrac = 2.0 // out of range: falls back to default
	l.Iters = 10
	got, err := l.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(got) {
		t.Fatal("infeasible result")
	}
}
