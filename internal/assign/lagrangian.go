package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/xrand"
)

// Lagrangian is the relaxation-guided heuristic: subgradient ascent on
// capacity multipliers produces price-adjusted costs; at every iteration
// the relaxed argmin assignment is repaired to feasibility and the best
// feasible result is kept. A strong classical baseline for GAP.
type Lagrangian struct {
	// Iters is the number of subgradient rounds (default 120).
	Iters int
	seed  int64
}

// NewLagrangian returns a Lagrangian-heuristic assigner.
func NewLagrangian(seed int64) *Lagrangian { return &Lagrangian{seed: seed} }

// Name implements Assigner.
func (*Lagrangian) Name() string { return "lagrangian" }

// Assign implements Assigner.
func (lg *Lagrangian) Assign(in *gap.Instance) (*gap.Assignment, error) {
	iters := lg.Iters
	if iters <= 0 {
		iters = 120
	}
	src := xrand.NewSplit(lg.seed, "lagrangian")
	n, m := in.N(), in.M()
	lambda := make([]float64, m)

	bestOf := make([]int, n)
	bestCost := math.Inf(1)
	found := false
	of := make([]int, n)
	repaired := make([]int, n)
	demand := make([]float64, m)
	rs := newRepairState(in)

	for it := 0; it < iters; it++ {
		// Relaxed solution under current prices.
		for j := range demand {
			demand[j] = 0
		}
		for i := 0; i < n; i++ {
			cRow, wRow := in.CostRow(i), in.WeightRow(i)
			minV, minJ := math.Inf(1), -1
			for j := 0; j < m; j++ {
				if math.IsInf(cRow[j], 1) {
					continue
				}
				v := cRow[j] + lambda[j]*wRow[j]
				if v < minV {
					minV, minJ = v, j
				}
			}
			if minJ < 0 {
				return nil, fmt.Errorf("assign/lagrangian: device %d unreachable from every edge: %w", i, gap.ErrInfeasible)
			}
			of[i] = minJ
			demand[minJ] += wRow[minJ]
		}
		// Repair to feasibility and track the incumbent.
		copy(repaired, of)
		if rs.repair(in, repaired, src) {
			c := in.CostOf(repaired)
			if c < bestCost {
				bestCost = c
				copy(bestOf, repaired)
				found = true
			}
		}
		// Subgradient step on multipliers.
		norm := 0.0
		for j := 0; j < m; j++ {
			g := demand[j] - in.Capacity[j]
			norm += g * g
		}
		if norm == 0 {
			break // relaxed solution feasible: optimal
		}
		step := 2.0 / float64(it+1)
		scale := step / math.Sqrt(norm)
		for j := 0; j < m; j++ {
			lambda[j] += scale * (demand[j] - in.Capacity[j])
			if lambda[j] < 0 {
				lambda[j] = 0
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("assign/lagrangian: repair never reached feasibility in %d iterations: %w", iters, gap.ErrInfeasible)
	}
	return finish(in, bestOf, "lagrangian")
}
