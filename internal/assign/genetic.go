package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/xrand"
)

// Genetic is a steady-state genetic algorithm over assignments: tournament
// selection, uniform crossover, shift mutation, and a greedy repair
// operator that restores capacity feasibility after crossover.
type Genetic struct {
	// Population size (default 40), Generations (default 150),
	// MutationRate per gene (default 0.02), TournamentK (default 3).
	Population   int
	Generations  int
	MutationRate float64
	TournamentK  int
	seed         int64
	progress     obs.ProgressSink
}

// SetProgress implements ProgressReporter: sink receives one event per
// generation of subsequent Assign calls.
func (g *Genetic) SetProgress(sink obs.ProgressSink) { g.progress = sink }

// NewGenetic returns a GA assigner with default parameters.
func NewGenetic(seed int64) *Genetic { return &Genetic{seed: seed} }

// Name implements Assigner.
func (*Genetic) Name() string { return "genetic" }

// Assign implements Assigner.
func (g *Genetic) Assign(in *gap.Instance) (*gap.Assignment, error) {
	pop := g.Population
	if pop <= 0 {
		pop = 40
	}
	gens := g.Generations
	if gens <= 0 {
		gens = 150
	}
	mut := g.MutationRate
	if mut <= 0 {
		mut = 0.02
	}
	tk := g.TournamentK
	if tk <= 0 {
		tk = 3
	}
	src := xrand.NewSplit(g.seed, "genetic")
	n := in.N()

	// Seed population: greedy/regret plus randomized members.
	var population [][]int
	if a, err := NewGreedy().Assign(in); err == nil {
		population = append(population, a.Of)
	}
	if a, err := NewRegretGreedy().Assign(in); err == nil {
		population = append(population, a.Of)
	}
	for attempt := int64(0); len(population) < pop && attempt < int64(pop*4); attempt++ {
		if a, err := NewRandom(xrand.SplitSeed(g.seed, fmt.Sprintf("ga-seed-%d", attempt))).Assign(in); err == nil {
			population = append(population, a.Of)
		}
	}
	if len(population) == 0 {
		return nil, fmt.Errorf("assign/genetic: could not seed a feasible population: %w", gap.ErrInfeasible)
	}
	// Pad by cloning if feasible seeds were scarce.
	for len(population) < pop {
		clone := make([]int, n)
		copy(clone, population[src.Intn(len(population))])
		population = append(population, clone)
	}

	fitness := func(of []int) float64 {
		return in.CostOf(of)
	}
	rs := newRepairState(in)
	costs := make([]float64, len(population))
	for i, of := range population {
		costs[i] = fitness(of)
	}
	bestIdx := 0
	for i := range costs {
		if costs[i] < costs[bestIdx] {
			bestIdx = i
		}
	}
	bestOf := make([]int, n)
	copy(bestOf, population[bestIdx])
	bestCost := costs[bestIdx]

	tournament := func() int {
		winner := src.Intn(len(population))
		for k := 1; k < tk; k++ {
			c := src.Intn(len(population))
			if costs[c] < costs[winner] {
				winner = c
			}
		}
		return winner
	}

	child := make([]int, n)
	for gen := 0; gen < gens; gen++ {
		pa, pb := population[tournament()], population[tournament()]
		for i := 0; i < n; i++ {
			if src.Bernoulli(0.5) {
				child[i] = pa[i]
			} else {
				child[i] = pb[i]
			}
			if src.Bernoulli(mut) {
				child[i] = src.Intn(in.M())
			}
		}
		if !rs.repair(in, child, src) {
			obs.EmitIter(g.progress, "genetic", gen, bestCost, true)
			continue // unrepairable child: discard
		}
		c := fitness(child)
		// Steady-state replacement: displace the worst member.
		worst := 0
		for i := range costs {
			if costs[i] > costs[worst] {
				worst = i
			}
		}
		if c < costs[worst] {
			copy(population[worst], child)
			costs[worst] = c
			if c < bestCost {
				bestCost = c
				copy(bestOf, child)
			}
		}
		obs.EmitIter(g.progress, "genetic", gen, bestCost, true)
	}
	return finish(in, bestOf, "genetic")
}

// repairState holds the scratch buffers repair reuses across calls, so
// the per-generation (GA) and per-iteration (Lagrangian) repair step
// allocates nothing in steady state.
type repairState struct {
	residual []float64
	pending  []int
}

// newRepairState sizes the repair buffers for in.
func newRepairState(in *gap.Instance) *repairState {
	return &repairState{
		residual: make([]float64, in.M()),
		pending:  make([]int, 0, in.N()),
	}
}

// repair restores feasibility in place: devices on overloaded or
// unreachable edges are moved (lightest excess first) to the cheapest edge
// with room. Reports whether a feasible repair was found.
func (rs *repairState) repair(in *gap.Instance, of []int, src *xrand.Source) bool {
	m := in.M()
	residual := rs.residual
	copy(residual, in.Capacity)
	for i, j := range of {
		if j < 0 || j >= m || math.IsInf(in.CostMs[i][j], 1) {
			of[i] = -1
			continue
		}
		residual[j] -= in.Weight[i][j]
	}
	// Evict from overloaded edges until all fit. Evict the device whose
	// move is cheapest-looking (smallest weight) for gentler repair.
	for j := 0; j < m; j++ {
		for residual[j] < -1e-12 {
			evict := -1
			for i, cur := range of {
				if cur != j {
					continue
				}
				if evict < 0 || in.Weight[i][j] < in.Weight[evict][j] {
					evict = i
				}
			}
			if evict < 0 {
				return false
			}
			residual[j] += in.Weight[evict][j]
			of[evict] = -1
		}
	}
	// Place evicted/unassigned devices greedily (random tie ordering).
	pending := rs.pending[:0]
	for i, cur := range of {
		if cur < 0 {
			pending = append(pending, i)
		}
	}
	rs.pending = pending
	src.Shuffle(len(pending), func(a, b int) { pending[a], pending[b] = pending[b], pending[a] })
	for _, i := range pending {
		j := cheapestFeasible(in, residual, i)
		if j < 0 {
			return false
		}
		of[i] = j
		residual[j] -= in.Weight[i][j]
	}
	return true
}
