package assign

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"taccc/internal/gap"
)

// mustSynthetic builds a synthetic instance or fails the test.
func mustSynthetic(t *testing.T, kind gap.SyntheticKind, n, m int, rho float64, seed int64) *gap.Instance {
	t.Helper()
	in, err := gap.Synthetic(kind, n, m, rho, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// infeasibleInstance has weights that exceed every capacity.
func infeasibleInstance(t *testing.T) *gap.Instance {
	t.Helper()
	in, err := gap.NewInstance(
		[][]float64{{1, 2}, {3, 4}, {5, 6}},
		[][]float64{{10, 10}, {10, 10}, {10, 10}},
		[]float64{5, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegistryListsAllAlgorithms(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{
		"random", "round-robin", "first-fit", "greedy", "regret-greedy",
		"local-search", "tabu", "lns", "sim-anneal", "genetic",
		"lagrangian", "lp-rounding", "bandit", "sarsa", "expected-sarsa",
		"double-qlearning", "nstep-qlearning", "qlearning", "portfolio", "minmax",
	}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if _, err := r.New("nope", 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRegistryRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	before := len(r.Names())
	r.Register("greedy", func(int64) Assigner { return NewGreedy() })
	if len(r.Names()) != before {
		t.Fatal("re-registering a name grew the registry")
	}
}

// TestAllAlgorithmsFeasibleAndValid is the central contract test: every
// algorithm, on a spread of instances, returns a valid capacity-respecting
// assignment whose name matches its registry key.
func TestAllAlgorithmsFeasibleAndValid(t *testing.T) {
	r := NewRegistry()
	instances := []*gap.Instance{
		mustSynthetic(t, gap.SyntheticUniform, 20, 4, 0.5, 1),
		mustSynthetic(t, gap.SyntheticUniform, 30, 5, 0.8, 2),
		mustSynthetic(t, gap.SyntheticCorrelated, 25, 4, 0.7, 3),
		mustSynthetic(t, gap.SyntheticCorrelated, 15, 3, 0.75, 4),
	}
	for _, name := range r.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := r.New(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			if a.Name() != name {
				t.Fatalf("Name() = %q, registry key %q", a.Name(), name)
			}
			for k, in := range instances {
				got, err := a.Assign(in)
				if err != nil {
					t.Fatalf("instance %d: %v", k, err)
				}
				if len(got.Of) != in.N() {
					t.Fatalf("instance %d: assignment length %d", k, len(got.Of))
				}
				if !in.Feasible(got) {
					t.Fatalf("instance %d: infeasible result, violations %v", k, in.Violations(got))
				}
			}
		})
	}
}

// TestAllAlgorithmsDeterministic: same seed, same result.
func TestAllAlgorithmsDeterministic(t *testing.T) {
	r := NewRegistry()
	in := mustSynthetic(t, gap.SyntheticCorrelated, 20, 4, 0.75, 9)
	for _, name := range r.Names() {
		a1, err := r.New(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := r.New(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		g1, err := a1.Assign(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := a2.Assign(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range g1.Of {
			if g1.Of[i] != g2.Of[i] {
				t.Fatalf("%s: nondeterministic at device %d", name, i)
			}
		}
	}
}

// TestAllAlgorithmsReportInfeasible: every algorithm signals ErrInfeasible
// on an impossible instance rather than returning an overloaded result.
func TestAllAlgorithmsReportInfeasible(t *testing.T) {
	r := NewRegistry()
	in := infeasibleInstance(t)
	for _, name := range r.Names() {
		a, err := r.New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Assign(in); !errors.Is(err, gap.ErrInfeasible) {
			t.Errorf("%s: want ErrInfeasible, got %v", name, err)
		}
	}
}

func TestGreedyPrefersCheapEdges(t *testing.T) {
	// Ample capacity: greedy must give every device its min-cost edge.
	in, err := gap.NewInstance(
		[][]float64{{5, 1}, {1, 5}, {2, 3}},
		[][]float64{{1, 1}, {1, 1}, {1, 1}},
		[]float64{100, 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewGreedy().Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0}
	for i := range want {
		if a.Of[i] != want[i] {
			t.Fatalf("Of = %v, want %v", a.Of, want)
		}
	}
	if in.TotalCost(a) != gap.RowMinBound(in) {
		t.Fatal("with slack capacity greedy must hit the row-min bound")
	}
}

func TestGreedyRespectsCapacityByDetour(t *testing.T) {
	// Both devices prefer edge 0 but only one fits.
	in, err := gap.NewInstance(
		[][]float64{{1, 10}, {1, 2}},
		[][]float64{{3, 3}, {3, 3}},
		[]float64{3, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewGreedy().Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(a) {
		t.Fatal("greedy overloaded an edge")
	}
	// Total must be 1 + 2 = 3 (device 0 takes edge 0 first in
	// heaviest-first order; equal weights keep index order).
	if got := in.TotalCost(a); got != 3 {
		t.Fatalf("TotalCost = %v, want 3", got)
	}
}

func TestLocalSearchNeverWorseThanGreedy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 30, 5, 0.8, seed)
		g, gerr := NewGreedy().Assign(in)
		ls, lerr := NewLocalSearch(seed).Assign(in)
		if gerr != nil || lerr != nil {
			// If greedy fails, local search may still succeed via
			// fallback starts; only compare when both succeed.
			continue
		}
		if in.TotalCost(ls) > in.TotalCost(g)+1e-9 {
			t.Fatalf("seed %d: local search (%v) worse than greedy (%v)",
				seed, in.TotalCost(ls), in.TotalCost(g))
		}
	}
}

func TestMetaheuristicsBeatRandomOnAverage(t *testing.T) {
	algos := map[string]Factory{
		"local-search": func(s int64) Assigner { return NewLocalSearch(s) },
		"sim-anneal":   func(s int64) Assigner { return NewSimulatedAnnealing(s) },
		"genetic":      func(s int64) Assigner { return NewGenetic(s) },
		"lagrangian":   func(s int64) Assigner { return NewLagrangian(s) },
		"qlearning":    func(s int64) Assigner { return NewQLearning(s) },
		"sarsa":        func(s int64) Assigner { return NewSARSA(s) },
		"bandit":       func(s int64) Assigner { return NewBandit(s) },
	}
	const seeds = 5
	for name, factory := range algos {
		var algoTotal, randTotal float64
		count := 0
		for seed := int64(0); seed < seeds; seed++ {
			in := mustSynthetic(t, gap.SyntheticUniform, 25, 5, 0.7, seed)
			a, err := factory(seed).Assign(in)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			r, err := NewRandom(seed).Assign(in)
			if err != nil {
				t.Fatalf("random seed %d: %v", seed, err)
			}
			algoTotal += in.TotalCost(a)
			randTotal += in.TotalCost(r)
			count++
		}
		if count > 0 && algoTotal >= randTotal {
			t.Errorf("%s: mean cost %.2f not better than random %.2f",
				name, algoTotal/float64(count), randTotal/float64(count))
		}
	}
}

func TestQLearningNearOptimalOnSmallInstances(t *testing.T) {
	// The abstract claims near-optimal assignments; check the gap to
	// branch-and-bound on instances small enough to solve exactly.
	var gapSum, optSum float64
	for seed := int64(0); seed < 6; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 10, 3, 0.8, seed)
		res, err := gap.BranchAndBound(in, gap.BnBOptions{})
		if errors.Is(err, gap.ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewQLearning(seed).Assign(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c := in.TotalCost(a)
		if c < res.Cost-1e-9 {
			t.Fatalf("seed %d: heuristic beat the proven optimum: %v < %v", seed, c, res.Cost)
		}
		gapSum += c - res.Cost
		optSum += res.Cost
	}
	if optSum == 0 {
		t.Skip("all instances infeasible")
	}
	relGap := gapSum / optSum
	if relGap > 0.05 {
		t.Fatalf("Q-learning mean optimality gap %.1f%% exceeds 5%%", 100*relGap)
	}
}

func TestQLearningTraceMonotone(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticUniform, 20, 4, 0.7, 3)
	q := NewQLearning(3)
	if _, err := q.Assign(in); err != nil {
		t.Fatal(err)
	}
	trace := q.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1]+1e-12 {
			t.Fatalf("trace not monotone at %d: %v > %v", i, trace[i], trace[i-1])
		}
	}
	if math.IsInf(trace[len(trace)-1], 1) {
		t.Fatal("trace never became feasible")
	}
	// Trace is a copy.
	trace[0] = -1
	if q.Trace()[0] == -1 {
		t.Fatal("Trace leaked internal storage")
	}
}

func TestQLearningHandlesTightCapacity(t *testing.T) {
	// rho = 1.0: a perfect packing is required; greedy often fails here,
	// the RL assigner must still find feasible assignments by avoiding
	// dead ends. Weights are uniform per device so packing exists.
	in, err := gap.NewInstance(
		[][]float64{
			{1, 4}, {1, 4}, {2, 3}, {2, 3},
		},
		[][]float64{
			{2, 2}, {2, 2}, {2, 2}, {2, 2},
		},
		[]float64{4, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewQLearning(1).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(a) {
		t.Fatal("infeasible under tight capacity")
	}
	loads := in.Loads(a)
	if loads[0] != 4 || loads[1] != 4 {
		t.Fatalf("perfect packing required, got loads %v", loads)
	}
}

func TestRLParamsDefaults(t *testing.T) {
	p := RLParams{}.withDefaults()
	if p.Episodes != 400 || p.Alpha != 0.3 || p.Gamma != 1.0 ||
		p.Epsilon0 != 0.4 || p.EpsilonMin != 0.02 || p.EpsilonDecay != 0.99 ||
		p.LoadLevels != 4 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	p2 := RLParams{Episodes: 10, Alpha: 0.5, LoadLevels: 2}.withDefaults()
	if p2.Episodes != 10 || p2.Alpha != 0.5 || p2.LoadLevels != 2 {
		t.Fatalf("explicit values overridden: %+v", p2)
	}
}

func TestMDPStateKey(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticUniform, 4, 3, 0.5, 1)
	env := newMDP(in, 4)
	env.reset()
	k1 := env.stateKey()
	if k1 != "0|aaa" {
		t.Fatalf("initial state key = %q, want 0|aaa", k1)
	}
	var buf []int
	buf = env.feasibleActions(buf)
	if len(buf) == 0 {
		t.Fatal("no feasible actions in fresh MDP")
	}
	env.take(buf[0])
	k2 := env.stateKey()
	if k2 == k1 {
		t.Fatal("state key did not change after take")
	}
}

func TestRepairFixesOverload(t *testing.T) {
	in, err := gap.NewInstance(
		[][]float64{{1, 5}, {1, 5}, {1, 5}},
		[][]float64{{2, 2}, {2, 2}, {2, 2}},
		[]float64{4, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	of := []int{0, 0, 0} // load 6 on cap 4
	src := newTestSource()
	if !newRepairState(in).repair(in, of, src) {
		t.Fatal("repair failed on repairable overload")
	}
	a := &gap.Assignment{Of: of}
	if !in.Feasible(a) {
		t.Fatalf("repair left infeasible: %v", of)
	}
}

func TestRepairReportsImpossible(t *testing.T) {
	in := infeasibleInstance(t)
	of := []int{0, 0, 0}
	if newRepairState(in).repair(in, of, newTestSource()) {
		t.Fatal("repair claimed success on impossible instance")
	}
}

// Property (the Assigner contract): every algorithm either returns a
// feasible assignment or an error wrapping gap.ErrInfeasible — never an
// overloaded result and never an unexplained failure.
func TestAssignerContractQuick(t *testing.T) {
	reg := NewRegistry()
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw%6) + 2
		in, err := gap.Synthetic(gap.SyntheticUniform, n, m, 0.6, seed)
		if err != nil {
			return false
		}
		for _, name := range reg.Names() {
			a, err := reg.New(name, seed)
			if err != nil {
				return false
			}
			got, err := a.Assign(in)
			if err != nil {
				if !errors.Is(err, gap.ErrInfeasible) {
					return false
				}
				continue
			}
			if !in.Feasible(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
