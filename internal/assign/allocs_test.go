package assign

import (
	"testing"

	"taccc/internal/gap"
)

// allocsPerAssign measures the average heap allocations of one full solve
// with a freshly constructed assigner (construction cost is iteration-
// independent, so it cancels in the scaling comparison below).
func allocsPerAssign(t *testing.T, mk func() Assigner, in *gap.Instance) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts are perturbed by race-detector shadow allocations")
	}
	return testing.AllocsPerRun(3, func() {
		if _, err := mk().Assign(in); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMetaheuristicAllocsDoNotScaleWithIters pins the steady-state
// allocation-free contract of the Evaluator-based inner loops: quadrupling
// the iteration budget of tabu, LNS and simulated annealing must not add
// allocations — every per-iteration buffer (candidate lists, the destroy
// permutation, the reinserter's pending set, undo state) is reused, so
// the per-solve total is pure setup.
func TestMetaheuristicAllocsDoNotScaleWithIters(t *testing.T) {
	in, err := gap.Synthetic(gap.SyntheticUniform, 40, 5, 0.85, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func(iters int) Assigner
	}{
		{"tabu", func(it int) Assigner {
			ts := NewTabuSearch(42)
			ts.Iters = it
			return ts
		}},
		{"lns", func(it int) Assigner {
			l := NewLNS(42)
			l.Iters = it
			return l
		}},
		{"sim-anneal", func(it int) Assigner {
			sa := NewSimulatedAnnealing(42)
			sa.Iters = it
			return sa
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			small := allocsPerAssign(t, func() Assigner { return tc.mk(150) }, in)
			big := allocsPerAssign(t, func() Assigner { return tc.mk(600) }, in)
			// Identical would be ideal; a slack of 2 absorbs incidental
			// runtime allocation without letting per-iteration garbage hide.
			if big > small+2 {
				t.Fatalf("allocs grew with iterations: %0.f at 150 iters, %.0f at 600", small, big)
			}
		})
	}
}

// TestTracingOffAddsZeroAllocs extends the allocs pins to the phase-
// tracing plane: a solver with tracing detached (WithPhases(a, nil) —
// the default state every untraced caller is in) must allocate exactly
// as much as one that never heard of phases. The nil-phase fast path is
// a pointer check, never a span or attr map.
func TestTracingOffAddsZeroAllocs(t *testing.T) {
	in, err := gap.Synthetic(gap.SyntheticUniform, 40, 5, 0.85, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func() Assigner
	}{
		{"tabu", func() Assigner { ts := NewTabuSearch(42); ts.Iters = 300; return ts }},
		{"lns", func() Assigner { l := NewLNS(42); l.Iters = 300; return l }},
		{"sim-anneal", func() Assigner { sa := NewSimulatedAnnealing(42); sa.Iters = 300; return sa }},
		{"local-search", func() Assigner { return NewLocalSearch(42) }},
		{"minmax", func() Assigner { return NewMinMax(42) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := allocsPerAssign(t, tc.mk, in)
			detached := allocsPerAssign(t, func() Assigner {
				a := tc.mk()
				WithPhases(a, nil)
				return a
			}, in)
			// Identical would be ideal; the same ±2 slack as the
			// iteration-scaling pin absorbs AllocsPerRun's runtime jitter
			// (GC, map growth) on these ~10k-alloc solves.
			if detached > plain+2 {
				t.Fatalf("tracing-off solve allocates %.0f, plain solve %.0f — nil phases must be free", detached, plain)
			}
		})
	}
}

// BenchmarkTabuTracingOff is the CI-visible form of the zero-overhead
// claim: run with -benchmem and compare against BenchmarkTabuPlain —
// allocs/op must match.
func BenchmarkTabuTracingOff(b *testing.B) {
	in, err := gap.Synthetic(gap.SyntheticUniform, 40, 5, 0.85, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := NewTabuSearch(42)
		ts.Iters = 300
		WithPhases(ts, nil)
		if _, err := ts.Assign(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTabuPlain is the baseline for BenchmarkTabuTracingOff.
func BenchmarkTabuPlain(b *testing.B) {
	in, err := gap.Synthetic(gap.SyntheticUniform, 40, 5, 0.85, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := NewTabuSearch(42)
		ts.Iters = 300
		if _, err := ts.Assign(in); err != nil {
			b.Fatal(err)
		}
	}
}
