package assign

import (
	"fmt"
	"math"
	"strconv"

	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/xrand"
)

// RLParams are the shared hyper-parameters of the tabular RL assigners.
// Zero fields take the documented defaults.
type RLParams struct {
	// Episodes is the number of training episodes (default 400).
	Episodes int
	// Alpha is the learning rate (default 0.3).
	Alpha float64
	// Gamma is the discount factor; the placement MDP is a finite
	// horizon with additive delay, so the default is 1.0.
	Gamma float64
	// Epsilon0, EpsilonMin and EpsilonDecay shape the exploration
	// schedule: eps(k) = max(EpsilonMin, Epsilon0 * EpsilonDecay^k)
	// (defaults 0.4, 0.02, 0.99).
	Epsilon0     float64
	EpsilonMin   float64
	EpsilonDecay float64
	// LoadLevels quantizes each edge's utilization into this many levels
	// when forming the state signature (default 4). Level count trades
	// table size against state resolution; the F8 ablation sweeps it.
	LoadLevels int

	// Ablation switches (experiment F11). Production configurations
	// leave all three false.
	//
	// NoCostSeeding initializes Q rows to zero instead of the negated
	// delay, so the untrained policy has no domain knowledge.
	NoCostSeeding bool
	// NoWarmStart skips priming the incumbent with the regret-greedy
	// constructive solution.
	NoWarmStart bool
	// UniformExploration replaces cost-biased softmax exploration with
	// uniform random choice over feasible edges.
	UniformExploration bool
}

func (p RLParams) withDefaults() RLParams {
	if p.Episodes <= 0 {
		p.Episodes = 400
	}
	if p.Alpha <= 0 {
		p.Alpha = 0.3
	}
	if p.Gamma <= 0 {
		p.Gamma = 1.0
	}
	if p.Epsilon0 <= 0 {
		p.Epsilon0 = 0.4
	}
	if p.EpsilonMin <= 0 {
		p.EpsilonMin = 0.02
	}
	if p.EpsilonDecay <= 0 || p.EpsilonDecay >= 1 {
		p.EpsilonDecay = 0.99
	}
	if p.LoadLevels <= 0 {
		p.LoadLevels = 4
	}
	return p
}

// mdp is the episodic placement MDP shared by the RL assigners: step t
// places device order[t]; the state is (t, quantized utilization vector);
// an action picks a feasible edge; the reward is the negated delay.
type mdp struct {
	in       *gap.Instance
	order    []int
	levels   int
	residual []float64
	loads    []float64
	step     int
	// rowInit[t] is the Q-row initialization for any state at step t.
	rowInit [][]float64
}

func newMDP(in *gap.Instance, levels int) *mdp {
	return newMDPSeeded(in, levels, true)
}

// newMDPSeeded builds the MDP with or without cost-seeded Q rows.
func newMDPSeeded(in *gap.Instance, levels int, costSeed bool) *mdp {
	m := &mdp{
		in:       in,
		order:    byDecreasingLoad(in),
		levels:   levels,
		residual: make([]float64, in.M()),
		loads:    make([]float64, in.M()),
	}
	// Cost-seeded Q initialization: a fresh row for step t starts at
	// -cost(device(t), j), so the untrained greedy policy already acts
	// like min-delay greedy and learning only has to correct for
	// capacity interactions. Unreachable edges start at -Inf and are
	// never picked either way.
	m.rowInit = make([][]float64, in.N())
	for t, dev := range m.order {
		row := make([]float64, in.M())
		for j := 0; j < in.M(); j++ {
			switch {
			case math.IsInf(in.CostMs[dev][j], 1):
				row[j] = math.Inf(-1)
			case costSeed:
				row[j] = -in.CostMs[dev][j]
			}
		}
		m.rowInit[t] = row
	}
	return m
}

// reset starts a new episode.
func (m *mdp) reset() {
	copy(m.residual, m.in.Capacity)
	for j := range m.loads {
		m.loads[j] = 0
	}
	m.step = 0
}

// done reports whether all devices are placed.
func (m *mdp) done() bool { return m.step >= len(m.order) }

// device returns the device placed at the current step.
func (m *mdp) device() int { return m.order[m.step] }

// stateKey encodes (step, quantized utilization vector). Utilization is
// load/capacity clipped to [0, 1); zero-capacity edges are always at the
// top level.
func (m *mdp) stateKey() string {
	// Preallocate: step digits + one byte per edge.
	buf := make([]byte, 0, 8+len(m.loads))
	buf = strconv.AppendInt(buf, int64(m.step), 10)
	buf = append(buf, '|')
	for j, load := range m.loads {
		level := m.levels - 1
		if m.in.Capacity[j] > 0 {
			u := load / m.in.Capacity[j]
			if u >= 1 {
				u = 1 - 1e-9
			}
			level = int(u * float64(m.levels))
		}
		buf = append(buf, byte('a'+level))
	}
	return string(buf)
}

// feasibleActions lists edges with remaining capacity for the current
// device. The returned slice is reused across calls.
func (m *mdp) feasibleActions(buf []int) []int {
	buf = buf[:0]
	i := m.device()
	for j := 0; j < m.in.M(); j++ {
		if fits(m.in, m.residual, i, j) {
			buf = append(buf, j)
		}
	}
	return buf
}

// take places the current device on edge j, returning the reward.
func (m *mdp) take(j int) float64 {
	i := m.device()
	m.residual[j] -= m.in.Weight[i][j]
	m.loads[j] += m.in.Weight[i][j]
	m.step++
	return -m.in.CostMs[i][j]
}

// qtable is a lazily grown state-action value table; fresh rows copy the
// step's initialization vector.
type qtable map[string][]float64

func (q qtable) row(key string, init []float64) []float64 {
	if r, ok := q[key]; ok {
		return r
	}
	r := make([]float64, len(init))
	copy(r, init)
	q[key] = r
	return r
}

// bestFeasible returns the feasible action with maximal Q and its value.
func bestQ(row []float64, feasible []int) (int, float64) {
	best, bestV := feasible[0], math.Inf(-1)
	for _, a := range feasible {
		if row[a] > bestV {
			best, bestV = a, row[a]
		}
	}
	return best, bestV
}

// epsGreedy picks a feasible action: explore with probability eps,
// otherwise exploit the Q row. Exploration is cost-biased (softmax over
// the Q row rather than uniform) so exploratory episodes sample plausible
// alternative placements instead of arbitrary far-away edges — uniform
// exploration wastes most episodes on assignments no policy would choose.
func epsGreedy(row []float64, feasible []int, eps float64, src *xrand.Source) int {
	return epsGreedyMode(row, feasible, eps, src, false)
}

// epsGreedyMode is epsGreedy with selectable exploration (uniform for the
// F11 ablation).
func epsGreedyMode(row []float64, feasible []int, eps float64, src *xrand.Source, uniform bool) int {
	if !src.Bernoulli(eps) {
		a, _ := bestQ(row, feasible)
		return a
	}
	if uniform {
		return feasible[src.Intn(len(feasible))]
	}
	// Softmax over Q values with a temperature tied to their spread.
	best := math.Inf(-1)
	worst := math.Inf(1)
	for _, a := range feasible {
		if row[a] > best {
			best = row[a]
		}
		if row[a] < worst {
			worst = row[a]
		}
	}
	temp := (best - worst) / 3
	if temp <= eps0Temp {
		return feasible[src.Intn(len(feasible))] // flat row: uniform
	}
	weights := make([]float64, len(feasible))
	for k, a := range feasible {
		weights[k] = math.Exp((row[a] - best) / temp)
	}
	return feasible[src.Choice(weights)]
}

// eps0Temp guards against zero/negligible Q spread in softmax exploration.
const eps0Temp = 1e-12

// QLearning is the paper's primary heuristic: tabular Q-learning over the
// placement MDP with load-quantized states, feasibility-masked actions
// (overload is structurally impossible) and an epsilon-greedy schedule.
// The best feasible episode ever seen is returned, which makes the
// algorithm an anytime improver over its own greedy rollouts.
type QLearning struct {
	// Params tunes learning; zero fields take defaults.
	Params RLParams
	seed   int64

	// lastTrace records, per episode, the best total cost found so far;
	// read it with Trace after Assign for the convergence experiment.
	lastTrace []float64
	// progress, when non-nil, receives one IterEvent per episode — the
	// live counterpart of Trace. Strictly observational.
	progress obs.ProgressSink
}

// SetProgress implements ProgressReporter: sink receives one event per
// training episode of subsequent Assign calls.
func (q *QLearning) SetProgress(sink obs.ProgressSink) { q.progress = sink }

// NewQLearning returns a Q-learning assigner with default parameters.
func NewQLearning(seed int64) *QLearning { return &QLearning{seed: seed} }

// Name implements Assigner.
func (*QLearning) Name() string { return "qlearning" }

// Trace returns the per-episode best-cost-so-far curve of the last Assign
// call. The caller owns the slice.
func (q *QLearning) Trace() []float64 {
	out := make([]float64, len(q.lastTrace))
	copy(out, q.lastTrace)
	return out
}

// Assign implements Assigner.
func (q *QLearning) Assign(in *gap.Instance) (*gap.Assignment, error) {
	p := q.Params.withDefaults()
	src := xrand.NewSplit(q.seed, "qlearning")
	env := newMDPSeeded(in, p.LoadLevels, !p.NoCostSeeding)
	table := make(qtable, p.Episodes)
	var actBuf, nextBuf []int

	bestOf := make([]int, in.N())
	bestCost := math.Inf(1)
	found := false
	of := make([]int, in.N())
	q.lastTrace = make([]float64, 0, p.Episodes)

	// Incumbent seeding: one pure-exploitation rollout (with cost-seeded
	// Q rows this reproduces min-delay greedy) plus the regret-greedy
	// constructive solution. The returned assignment can therefore never
	// be worse than either constructive baseline; the episodes below
	// only improve on the warm start.
	if c, ok := greedyRollout(env, table, of); ok {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !p.NoWarmStart {
		if c, warm := warmStart(in); warm != nil && c < bestCost {
			bestCost = c
			copy(bestOf, warm)
			found = true
		}
	}

	eps := p.Epsilon0
	for ep := 0; ep < p.Episodes; ep++ {
		env.reset()
		cost := 0.0
		feasibleRun := true
		for !env.done() {
			key := env.stateKey()
			actBuf = env.feasibleActions(actBuf)
			if len(actBuf) == 0 {
				// Dead end: punish the whole visited path is
				// unnecessary — Q of the last action gets the
				// penalty so the policy steers away.
				feasibleRun = false
				break
			}
			row := table.row(key, env.rowInit[env.step])
			a := epsGreedyMode(row, actBuf, eps, src, p.UniformExploration)
			i := env.device()
			r := env.take(a)
			cost -= r
			of[i] = a

			var target float64
			if env.done() {
				target = r
			} else {
				nextBuf = env.feasibleActions(nextBuf)
				if len(nextBuf) == 0 {
					// Next state is a dead end: large
					// penalty as the terminal value.
					target = r - deadEndPenalty(in)
					feasibleRun = false
				} else {
					nextRow := table.row(env.stateKey(), env.rowInit[env.step])
					_, nv := bestQ(nextRow, nextBuf)
					target = r + p.Gamma*nv
				}
			}
			row[a] += p.Alpha * (target - row[a])
			if !feasibleRun {
				break
			}
		}
		if feasibleRun && cost < bestCost {
			bestCost = cost
			copy(bestOf, of)
			found = true
		}
		if found {
			q.lastTrace = append(q.lastTrace, bestCost)
		} else {
			q.lastTrace = append(q.lastTrace, math.Inf(1))
		}
		obs.EmitIter(q.progress, "qlearning", ep, bestCost, found)
		eps *= p.EpsilonDecay
		if eps < p.EpsilonMin {
			eps = p.EpsilonMin
		}
	}

	// Final pure-exploitation rollout over the learned table; keep it if
	// it beats the best training episode.
	if c, ok := greedyRollout(env, table, of); ok && c < bestCost {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !found {
		return nil, fmt.Errorf("assign/qlearning: no feasible episode in %d attempts: %w", p.Episodes, gap.ErrInfeasible)
	}
	return finish(in, bestOf, "qlearning")
}

// warmStart returns the regret-greedy constructive solution and its cost,
// or (0, nil) when that heuristic fails. RL assigners use it to prime
// their incumbent, the standard warm-start that makes episodic search an
// anytime improver over the best constructive baseline.
func warmStart(in *gap.Instance) (float64, []int) {
	rg, err := NewRegretGreedy().Assign(in)
	if err != nil {
		return 0, nil
	}
	return in.TotalCost(rg), rg.Of
}

// greedyRollout performs one epsilon=0 episode against the current table,
// writing the placement into of. It reports the episode cost and whether a
// complete feasible placement was reached. Q rows touched are created (and
// therefore cost-seeded) but not updated.
func greedyRollout(env *mdp, table qtable, of []int) (float64, bool) {
	env.reset()
	cost := 0.0
	var buf []int
	for !env.done() {
		buf = env.feasibleActions(buf)
		if len(buf) == 0 {
			return 0, false
		}
		row := table.row(env.stateKey(), env.rowInit[env.step])
		a, _ := bestQ(row, buf)
		i := env.device()
		cost -= env.take(a)
		of[i] = a
	}
	return cost, true
}

// deadEndPenalty scales the infeasibility punishment to the instance's
// cost magnitude so it dominates any delay difference.
func deadEndPenalty(in *gap.Instance) float64 {
	max := 0.0
	for i := 0; i < in.N(); i++ {
		for j := 0; j < in.M(); j++ {
			if c := in.CostMs[i][j]; !math.IsInf(c, 1) && c > max {
				max = c
			}
		}
	}
	return (max + 1) * float64(in.N())
}

// SARSA is the on-policy variant of the RL assigner: the TD target uses
// the action the behaviour policy actually takes next. Kept as an
// ablation/second heuristic; in the evaluation it tracks Q-learning
// closely.
type SARSA struct {
	// Params tunes learning; zero fields take defaults.
	Params RLParams
	seed   int64
}

// NewSARSA returns a SARSA assigner with default parameters.
func NewSARSA(seed int64) *SARSA { return &SARSA{seed: seed} }

// Name implements Assigner.
func (*SARSA) Name() string { return "sarsa" }

// Assign implements Assigner.
func (s *SARSA) Assign(in *gap.Instance) (*gap.Assignment, error) {
	p := s.Params.withDefaults()
	src := xrand.NewSplit(s.seed, "sarsa")
	env := newMDP(in, p.LoadLevels)
	table := make(qtable, p.Episodes)
	var actBuf []int

	bestOf := make([]int, in.N())
	bestCost := math.Inf(1)
	found := false
	of := make([]int, in.N())

	// Same incumbent seeding as QLearning: start from the greedy-quality
	// exploitation rollout and the regret-greedy warm start so training
	// can only improve the result.
	if c, ok := greedyRollout(env, table, of); ok {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !p.NoWarmStart {
		if c, warm := warmStart(in); warm != nil && c < bestCost {
			bestCost = c
			copy(bestOf, warm)
			found = true
		}
	}

	eps := p.Epsilon0
	for ep := 0; ep < p.Episodes; ep++ {
		env.reset()
		cost := 0.0
		feasibleRun := true

		key := env.stateKey()
		actBuf = env.feasibleActions(actBuf)
		if len(actBuf) == 0 {
			return nil, fmt.Errorf("assign/sarsa: no feasible first action: %w", gap.ErrInfeasible)
		}
		row := table.row(key, env.rowInit[env.step])
		a := epsGreedy(row, actBuf, eps, src)

		for {
			i := env.device()
			r := env.take(a)
			cost -= r
			of[i] = a
			prevRow, prevA := row, a

			if env.done() {
				prevRow[prevA] += p.Alpha * (r - prevRow[prevA])
				break
			}
			actBuf = env.feasibleActions(actBuf)
			if len(actBuf) == 0 {
				prevRow[prevA] += p.Alpha * (r - deadEndPenalty(in) - prevRow[prevA])
				feasibleRun = false
				break
			}
			key = env.stateKey()
			row = table.row(key, env.rowInit[env.step])
			a = epsGreedy(row, actBuf, eps, src)
			target := r + p.Gamma*row[a]
			prevRow[prevA] += p.Alpha * (target - prevRow[prevA])
		}
		if feasibleRun && cost < bestCost {
			bestCost = cost
			copy(bestOf, of)
			found = true
		}
		eps *= p.EpsilonDecay
		if eps < p.EpsilonMin {
			eps = p.EpsilonMin
		}
	}
	if c, ok := greedyRollout(env, table, of); ok && c < bestCost {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !found {
		return nil, fmt.Errorf("assign/sarsa: no feasible episode in %d attempts: %w", p.Episodes, gap.ErrInfeasible)
	}
	return finish(in, bestOf, "sarsa")
}
