package assign

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"taccc/internal/gap"
	"taccc/internal/obs"
)

// Portfolio runs a set of assigners and returns the best feasible result —
// the pragmatic production choice when solve time is cheap relative to the
// delay the configuration will accrue. The default portfolio combines the
// strongest constructive, relaxation and learning heuristics.
//
// Set Parallel to run members concurrently; Instance is read-only for
// assigners, so members never contend, and the result is identical to the
// sequential run (best cost, ties broken by member order).
type Portfolio struct {
	// Parallel runs members on separate goroutines.
	Parallel bool

	members  []Assigner
	progress obs.ProgressSink
}

// SetProgress implements ProgressReporter: sink receives one event per
// member arm (Iter is the arm index, Algo the member's name) after the
// arms finish. Events are emitted sequentially in member order, so the
// stream is identical for sequential and parallel portfolios.
func (p *Portfolio) SetProgress(sink obs.ProgressSink) { p.progress = sink }

// NewPortfolio builds a sequential portfolio over the given members; with
// no members it uses the default set (regret-greedy, local-search,
// lagrangian, qlearning) seeded from seed.
func NewPortfolio(seed int64, members ...Assigner) *Portfolio {
	if len(members) == 0 {
		members = []Assigner{
			NewRegretGreedy(),
			NewLocalSearch(seed),
			NewLagrangian(seed),
			NewQLearning(seed),
		}
	}
	return &Portfolio{members: members}
}

// NewParallelPortfolio is NewPortfolio with members running concurrently —
// the production configuration, since the portfolio's solve time is its
// slowest member rather than the sum. The result is identical to the
// sequential portfolio: members never contend (instances are read-only for
// assigners) and the winner is picked afterwards in member order, so ties
// break the same way regardless of which member finished first.
func NewParallelPortfolio(seed int64, members ...Assigner) *Portfolio {
	p := NewPortfolio(seed, members...)
	p.Parallel = true
	return p
}

// Name implements Assigner.
func (*Portfolio) Name() string { return "portfolio" }

// Assign implements Assigner: best feasible member result wins. If every
// member fails, the error wraps gap.ErrInfeasible (plus the first
// unexpected error seen, if any).
func (p *Portfolio) Assign(in *gap.Instance) (*gap.Assignment, error) {
	results := make([]*gap.Assignment, len(p.members))
	errs := make([]error, len(p.members))
	if p.Parallel {
		var wg sync.WaitGroup
		for idx, m := range p.members {
			wg.Add(1)
			go func(idx int, m Assigner) {
				defer wg.Done()
				results[idx], errs[idx] = m.Assign(in)
			}(idx, m)
		}
		wg.Wait()
	} else {
		for idx, m := range p.members {
			results[idx], errs[idx] = m.Assign(in)
		}
	}
	var best *gap.Assignment
	bestCost := 0.0
	var firstErr error
	for idx := range p.members {
		if p.progress != nil {
			cost, feasible := math.Inf(1), false
			if errs[idx] == nil {
				//lint:allow hotloop one re-cost per member result, not a search iteration
				cost, feasible = in.TotalCost(results[idx]), true
			}
			obs.EmitIter(p.progress, p.members[idx].Name(), idx, cost, feasible)
		}
		if err := errs[idx]; err != nil {
			if !errors.Is(err, gap.ErrInfeasible) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		//lint:allow hotloop one re-cost per member result, not a search iteration
		if c := in.TotalCost(results[idx]); best == nil || c < bestCost {
			best, bestCost = results[idx], c
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, fmt.Errorf("assign/portfolio: all members failed (first unexpected: %v): %w", firstErr, gap.ErrInfeasible)
		}
		return nil, fmt.Errorf("assign/portfolio: all members infeasible: %w", gap.ErrInfeasible)
	}
	return best, nil
}
