package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/xrand"
)

// LocalSearch hill-climbs from a constructive start with shift moves
// (reassign one device) and swap moves (exchange two devices' edges),
// accepting only strict improvements, until a local optimum or the move
// budget is reached.
type LocalSearch struct {
	seed int64
	// MaxRounds caps full improvement sweeps; 0 means 100.
	MaxRounds int
}

// NewLocalSearch returns a local-search assigner seeded for its randomized
// start order.
func NewLocalSearch(seed int64) *LocalSearch { return &LocalSearch{seed: seed} }

// Name implements Assigner.
func (*LocalSearch) Name() string { return "local-search" }

// Assign implements Assigner.
func (ls *LocalSearch) Assign(in *gap.Instance) (*gap.Assignment, error) {
	start, err := startFeasible(in, ls.seed)
	if err != nil {
		return nil, fmt.Errorf("assign/local-search: %w", err)
	}
	of := start.Of
	residual := residuals(in)
	for i, j := range of {
		residual[j] -= in.Weight[i][j]
	}
	maxRounds := ls.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100
	}
	for round := 0; round < maxRounds; round++ {
		if !improveOnce(in, of, residual) {
			break
		}
	}
	return finish(in, of, "local-search")
}

// improveOnce performs one full sweep of shift and swap moves, applying
// every strict improvement found; reports whether anything improved.
func improveOnce(in *gap.Instance, of []int, residual []float64) bool {
	improved := false
	n, m := in.N(), in.M()
	// Shift moves.
	for i := 0; i < n; i++ {
		cur := of[i]
		for j := 0; j < m; j++ {
			if j == cur {
				continue
			}
			if in.CostMs[i][j] >= in.CostMs[i][cur] {
				continue
			}
			if !fits(in, residual, i, j) {
				continue
			}
			residual[cur] += in.Weight[i][cur]
			residual[j] -= in.Weight[i][j]
			of[i] = j
			cur = j
			improved = true
		}
	}
	// Swap moves.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ja, jb := of[a], of[b]
			if ja == jb {
				continue
			}
			delta := in.CostMs[a][jb] + in.CostMs[b][ja] - in.CostMs[a][ja] - in.CostMs[b][jb]
			if delta >= -1e-12 {
				continue
			}
			// Capacity check after removing both devices.
			resA := residual[ja] + in.Weight[a][ja]
			resB := residual[jb] + in.Weight[b][jb]
			if in.Weight[b][ja] > resA+1e-12 || in.Weight[a][jb] > resB+1e-12 {
				continue
			}
			if math.IsInf(in.CostMs[a][jb], 1) || math.IsInf(in.CostMs[b][ja], 1) {
				continue
			}
			residual[ja] = resA - in.Weight[b][ja]
			residual[jb] = resB - in.Weight[a][jb]
			of[a], of[b] = jb, ja
			improved = true
		}
	}
	return improved
}

// startFeasible builds an initial feasible assignment: greedy first, then
// regret-greedy, then randomized restarts — local search and annealing
// both start from it.
func startFeasible(in *gap.Instance, seed int64) (*gap.Assignment, error) {
	if a, err := NewGreedy().Assign(in); err == nil {
		return a, nil
	}
	if a, err := NewRegretGreedy().Assign(in); err == nil {
		return a, nil
	}
	for attempt := int64(0); attempt < 20; attempt++ {
		if a, err := NewRandom(xrand.SplitSeed(seed, fmt.Sprintf("restart-%d", attempt))).Assign(in); err == nil {
			return a, nil
		}
	}
	return nil, gap.ErrInfeasible
}

// SimulatedAnnealing explores shift/swap moves with Metropolis acceptance
// and geometric cooling, keeping the best feasible assignment seen.
type SimulatedAnnealing struct {
	seed int64
	// Iters is the number of proposals; 0 means 20000.
	Iters int
	// T0 and Cooling set the initial temperature and geometric decay; 0
	// means T0 = 10% of the start cost and Cooling = 0.9995.
	T0      float64
	Cooling float64
}

// NewSimulatedAnnealing returns an annealing assigner with default
// schedule.
func NewSimulatedAnnealing(seed int64) *SimulatedAnnealing {
	return &SimulatedAnnealing{seed: seed}
}

// Name implements Assigner.
func (*SimulatedAnnealing) Name() string { return "sim-anneal" }

// Assign implements Assigner.
func (sa *SimulatedAnnealing) Assign(in *gap.Instance) (*gap.Assignment, error) {
	start, err := startFeasible(in, sa.seed)
	if err != nil {
		return nil, fmt.Errorf("assign/sim-anneal: %w", err)
	}
	src := xrand.NewSplit(sa.seed, "sa")
	of := start.Of
	residual := residuals(in)
	for i, j := range of {
		residual[j] -= in.Weight[i][j]
	}
	cur := in.TotalCost(&gap.Assignment{Of: of})
	bestOf := make([]int, len(of))
	copy(bestOf, of)
	bestCost := cur

	iters := sa.Iters
	if iters <= 0 {
		iters = 20000
	}
	temp := sa.T0
	if temp <= 0 {
		temp = cur * 0.1 / float64(in.N())
		if temp <= 0 {
			temp = 1
		}
	}
	cooling := sa.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.9995
	}

	n, m := in.N(), in.M()
	for it := 0; it < iters; it++ {
		if src.Bernoulli(0.7) {
			// Shift proposal.
			i := src.Intn(n)
			j := src.Intn(m)
			cur = proposeShift(in, of, residual, i, j, cur, temp, src)
		} else {
			// Swap proposal.
			a, b := src.Intn(n), src.Intn(n)
			if a != b {
				cur = proposeSwap(in, of, residual, a, b, cur, temp, src)
			}
		}
		if cur < bestCost-1e-12 {
			bestCost = cur
			copy(bestOf, of)
		}
		temp *= cooling
	}
	return finish(in, bestOf, "sim-anneal")
}

func metropolisAccept(delta, temp float64, src *xrand.Source) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return src.Bernoulli(math.Exp(-delta / temp))
}

func proposeShift(in *gap.Instance, of []int, residual []float64, i, j int, cur, temp float64, src *xrand.Source) float64 {
	curJ := of[i]
	if j == curJ || !fits(in, residual, i, j) {
		return cur
	}
	delta := in.CostMs[i][j] - in.CostMs[i][curJ]
	if !metropolisAccept(delta, temp, src) {
		return cur
	}
	residual[curJ] += in.Weight[i][curJ]
	residual[j] -= in.Weight[i][j]
	of[i] = j
	return cur + delta
}

func proposeSwap(in *gap.Instance, of []int, residual []float64, a, b int, cur, temp float64, src *xrand.Source) float64 {
	ja, jb := of[a], of[b]
	if ja == jb {
		return cur
	}
	if math.IsInf(in.CostMs[a][jb], 1) || math.IsInf(in.CostMs[b][ja], 1) {
		return cur
	}
	resA := residual[ja] + in.Weight[a][ja]
	resB := residual[jb] + in.Weight[b][jb]
	if in.Weight[b][ja] > resA+1e-12 || in.Weight[a][jb] > resB+1e-12 {
		return cur
	}
	delta := in.CostMs[a][jb] + in.CostMs[b][ja] - in.CostMs[a][ja] - in.CostMs[b][jb]
	if !metropolisAccept(delta, temp, src) {
		return cur
	}
	residual[ja] = resA - in.Weight[b][ja]
	residual[jb] = resB - in.Weight[a][jb]
	of[a], of[b] = jb, ja
	return cur + delta
}
