package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/xrand"
)

// LocalSearch hill-climbs from a constructive start with shift moves
// (reassign one device) and swap moves (exchange two devices' edges),
// accepting only strict improvements, until a local optimum or the move
// budget is reached. Moves are priced and applied through one
// gap.Evaluator, so each candidate costs O(1) and sweeps allocate nothing.
type LocalSearch struct {
	seed int64
	// MaxRounds caps full improvement sweeps; 0 means 100.
	MaxRounds int
	phases    *obs.Phase
}

// SetPhases implements PhasedSolver: subsequent Assign calls emit
// "construction" and "improvement" spans under parent.
func (ls *LocalSearch) SetPhases(parent *obs.Phase) { ls.phases = parent }

// NewLocalSearch returns a local-search assigner seeded for its randomized
// start order.
func NewLocalSearch(seed int64) *LocalSearch { return &LocalSearch{seed: seed} }

// Name implements Assigner.
func (*LocalSearch) Name() string { return "local-search" }

// Assign implements Assigner.
func (ls *LocalSearch) Assign(in *gap.Instance) (*gap.Assignment, error) {
	consPh := ls.phases.Child("construction")
	start, err := startFeasible(in, ls.seed)
	consPh.End()
	if err != nil {
		return nil, fmt.Errorf("assign/local-search: %w", err)
	}
	ev := gap.NewEvaluator(in)
	ev.SetUndoTracking(false)
	ev.Reset(start.Of)
	maxRounds := ls.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100
	}
	impPh := ls.phases.Child("improvement")
	defer impPh.End()
	for round := 0; round < maxRounds; round++ {
		if !improveOnce(ev) {
			break
		}
	}
	return finish(in, ev.Assignment(start.Of), "local-search")
}

// improveOnce performs one full sweep of shift and swap moves, applying
// every strict improvement found; reports whether anything improved. The
// sweep order (devices ascending, edges ascending, moves applied as they
// are found) is part of the determinism contract: changing it changes
// which local optimum the search lands in.
func improveOnce(ev *gap.Evaluator) bool {
	improved := false
	in := ev.Instance()
	n, m := in.N(), in.M()
	residual := ev.Residuals()
	of := ev.Placement()
	// Shift moves.
	for i := 0; i < n; i++ {
		cur := of[i]
		cRow, wRow := in.CostRow(i), in.WeightRow(i)
		curCost := cRow[cur]
		for j := 0; j < m; j++ {
			if j == cur || cRow[j] >= curCost {
				continue
			}
			if wRow[j] > residual[j]+1e-12 {
				continue // does not fit
			}
			ev.Move(i, j)
			cur = j
			curCost = cRow[j]
			improved = true
		}
	}
	// Swap moves. The candidate test is written against the instance rows
	// directly — same predicates as Evaluator.DeltaSwap/SwapFits, kept
	// inline because this O(n²) scan dominates the sweep.
	for a := 0; a < n; a++ {
		cRowA, wRowA := in.CostRow(a), in.WeightRow(a)
		for b := a + 1; b < n; b++ {
			ja, jb := of[a], of[b]
			if ja == jb {
				continue
			}
			cRowB := in.CostRow(b)
			delta := cRowA[jb] + cRowB[ja] - cRowA[ja] - cRowB[jb]
			if delta >= -1e-12 {
				continue
			}
			// Capacity check after removing both devices.
			wRowB := in.WeightRow(b)
			resA := residual[ja] + wRowA[ja]
			resB := residual[jb] + wRowB[jb]
			if wRowB[ja] > resA+1e-12 || wRowA[jb] > resB+1e-12 {
				continue
			}
			if math.IsInf(cRowA[jb], 1) || math.IsInf(cRowB[ja], 1) {
				continue
			}
			ev.Swap(a, b)
			improved = true
		}
	}
	return improved
}

// startFeasible builds an initial feasible assignment: greedy first, then
// regret-greedy, then randomized restarts — local search and annealing
// both start from it.
func startFeasible(in *gap.Instance, seed int64) (*gap.Assignment, error) {
	if a, err := NewGreedy().Assign(in); err == nil {
		return a, nil
	}
	if a, err := NewRegretGreedy().Assign(in); err == nil {
		return a, nil
	}
	for attempt := int64(0); attempt < 20; attempt++ {
		if a, err := NewRandom(xrand.SplitSeed(seed, fmt.Sprintf("restart-%d", attempt))).Assign(in); err == nil {
			return a, nil
		}
	}
	return nil, gap.ErrInfeasible
}

// SimulatedAnnealing explores shift/swap moves with Metropolis acceptance
// and geometric cooling, keeping the best feasible assignment seen.
type SimulatedAnnealing struct {
	seed int64
	// Iters is the number of proposals; 0 means 20000.
	Iters int
	// T0 and Cooling set the initial temperature and geometric decay; 0
	// means T0 = 10% of the start cost and Cooling = 0.9995.
	T0      float64
	Cooling float64
	phases  *obs.Phase
}

// SetPhases implements PhasedSolver: subsequent Assign calls emit
// "construction" and "improvement" spans under parent.
func (sa *SimulatedAnnealing) SetPhases(parent *obs.Phase) { sa.phases = parent }

// NewSimulatedAnnealing returns an annealing assigner with default
// schedule.
func NewSimulatedAnnealing(seed int64) *SimulatedAnnealing {
	return &SimulatedAnnealing{seed: seed}
}

// Name implements Assigner.
func (*SimulatedAnnealing) Name() string { return "sim-anneal" }

// Assign implements Assigner.
func (sa *SimulatedAnnealing) Assign(in *gap.Instance) (*gap.Assignment, error) {
	consPh := sa.phases.Child("construction")
	start, err := startFeasible(in, sa.seed)
	consPh.End()
	if err != nil {
		return nil, fmt.Errorf("assign/sim-anneal: %w", err)
	}
	src := xrand.NewSplit(sa.seed, "sa")
	ev := gap.NewEvaluator(in)
	ev.SetUndoTracking(false)
	ev.Reset(start.Of)
	cur := ev.Total()
	bestOf := ev.Assignment(start.Of)
	bestCost := cur

	iters := sa.Iters
	if iters <= 0 {
		iters = 20000
	}
	temp := sa.T0
	if temp <= 0 {
		temp = cur * 0.1 / float64(in.N())
		if temp <= 0 {
			temp = 1
		}
	}
	cooling := sa.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.9995
	}

	n, m := in.N(), in.M()
	impPh := sa.phases.Child("improvement")
	defer impPh.End()
	impPh.SetAttr("iters", iters)
	for it := 0; it < iters; it++ {
		if src.Bernoulli(0.7) {
			// Shift proposal.
			i := src.Intn(n)
			j := src.Intn(m)
			cur = proposeShift(ev, i, j, cur, temp, src)
		} else {
			// Swap proposal.
			a, b := src.Intn(n), src.Intn(n)
			if a != b {
				cur = proposeSwap(ev, a, b, cur, temp, src)
			}
		}
		if cur < bestCost-1e-12 {
			bestCost = cur
			bestOf = ev.Assignment(bestOf)
		}
		temp *= cooling
	}
	return finish(in, bestOf, "sim-anneal")
}

func metropolisAccept(delta, temp float64, src *xrand.Source) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return src.Bernoulli(math.Exp(-delta / temp))
}

func proposeShift(ev *gap.Evaluator, i, j int, cur, temp float64, src *xrand.Source) float64 {
	if j == ev.Of(i) || !ev.Fits(i, j) {
		return cur
	}
	delta := ev.DeltaMove(i, j)
	if !metropolisAccept(delta, temp, src) {
		return cur
	}
	ev.Move(i, j)
	return cur + delta
}

func proposeSwap(ev *gap.Evaluator, a, b int, cur, temp float64, src *xrand.Source) float64 {
	if ev.Of(a) == ev.Of(b) {
		return cur
	}
	if !ev.SwapFits(a, b) {
		return cur
	}
	delta := ev.DeltaSwap(a, b)
	if !metropolisAccept(delta, temp, src) {
		return cur
	}
	ev.Swap(a, b)
	return cur + delta
}
