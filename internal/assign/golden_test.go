package assign

import (
	"fmt"
	"hash/fnv"
	"testing"

	"taccc/internal/gap"
)

// goldenShapes are the instance families the golden determinism test
// sweeps: a comfortable uniform case, a correlated case and a larger
// tight one, each at three seeds.
var goldenShapes = []struct {
	kind gap.SyntheticKind
	n, m int
	rho  float64
}{
	{gap.SyntheticUniform, 30, 5, 0.8},
	{gap.SyntheticCorrelated, 25, 4, 0.85},
	{gap.SyntheticUniform, 60, 8, 0.9},
}

// goldenHashes pins the exact assignment every metaheuristic produces per
// (shape, seed), captured on the pre-Evaluator implementations. Hash is
// FNV-64a over the placement vector's entries as little-endian 4-byte
// words; "ERR" marks cells where the solver deterministically reports
// infeasibility. Any diff here means a solver's per-seed arithmetic — not
// just its cost — changed, which is exactly what the incremental-kernel
// contract forbids.
var goldenHashes = []struct {
	shape int
	seed  int64
	algo  string
	hash  string
}{
	{0, 1, "local-search", "b8fececd02e190b0"},
	{0, 1, "sim-anneal", "5a94c0d4246676d4"},
	{0, 1, "tabu", "5a94c0d4246676d4"},
	{0, 1, "lns", "5a94c0d4246676d4"},
	{0, 1, "genetic", "5a94c0d4246676d4"},
	{0, 1, "lagrangian", "5a94c0d4246676d4"},
	{0, 2, "local-search", "dbf27d8438714ec7"},
	{0, 2, "sim-anneal", "b8ac6b3c5021ba46"},
	{0, 2, "tabu", "b8ac6b3c5021ba46"},
	{0, 2, "lns", "b8ac6b3c5021ba46"},
	{0, 2, "genetic", "b8ac6b3c5021ba46"},
	{0, 2, "lagrangian", "b8ac6b3c5021ba46"},
	{0, 3, "local-search", "da4416e23f19f8a2"},
	{0, 3, "sim-anneal", "da4416e23f19f8a2"},
	{0, 3, "tabu", "da4416e23f19f8a2"},
	{0, 3, "lns", "da4416e23f19f8a2"},
	{0, 3, "genetic", "da4416e23f19f8a2"},
	{0, 3, "lagrangian", "02d6e700c9493ca4"},
	{1, 1, "local-search", "67abaac9c8d89ae7"},
	{1, 1, "sim-anneal", "9ed837806a8c6cb7"},
	{1, 1, "tabu", "f31118b2c4818944"},
	{1, 1, "lns", "d7e151bbaa0355d5"},
	{1, 1, "genetic", "ea8d155a62d73744"},
	{1, 1, "lagrangian", "c87d28732abbe317"},
	{1, 2, "local-search", "c74705e50bd37be7"},
	{1, 2, "sim-anneal", "ee7063f55d406836"},
	{1, 2, "tabu", "69189c99d49f00e6"},
	{1, 2, "lns", "a7055cbb398c9404"},
	{1, 2, "genetic", "ac7b5178e31a8f06"},
	{1, 2, "lagrangian", "ERR"},
	{1, 3, "local-search", "cda832038f9e3906"},
	{1, 3, "sim-anneal", "ce2a363676a323e4"},
	{1, 3, "tabu", "25e9aa5597b2e477"},
	{1, 3, "lns", "910d908b78617915"},
	{1, 3, "genetic", "9df81dedd3f2c9f6"},
	{1, 3, "lagrangian", "ERR"},
	{2, 1, "local-search", "621c3cc4c902b391"},
	{2, 1, "sim-anneal", "c26ef5cd4389bcb3"},
	{2, 1, "tabu", "014197c1ee8f81f7"},
	{2, 1, "lns", "8bb17f2234f72261"},
	{2, 1, "genetic", "014197c1ee8f81f7"},
	{2, 1, "lagrangian", "8bb17f2234f72261"},
	{2, 2, "local-search", "7831ff3057cfc9d7"},
	{2, 2, "sim-anneal", "05205b3f45285466"},
	{2, 2, "tabu", "ff5154e46a6a2ae0"},
	{2, 2, "lns", "650669b07eb1e197"},
	{2, 2, "genetic", "650669b07eb1e197"},
	{2, 2, "lagrangian", "04b90673240a9a26"},
	{2, 3, "local-search", "72370d91a6435a30"},
	{2, 3, "sim-anneal", "8051e89f20524c15"},
	{2, 3, "tabu", "d41fb595853a38b1"},
	{2, 3, "lns", "055b1acac105bb42"},
	{2, 3, "genetic", "055b1acac105bb42"},
	{2, 3, "lagrangian", "8d56302634d80382"},
}

// hashOf folds a placement vector with FNV-64a, each entry as a
// little-endian 4-byte word.
func hashOf(of []int) string {
	h := fnv.New64a()
	for _, j := range of {
		var b [4]byte
		b[0] = byte(j)
		b[1] = byte(j >> 8)
		b[2] = byte(j >> 16)
		b[3] = byte(j >> 24)
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestMetaheuristicsGoldenAssignments replays every (shape, seed, algo)
// cell and requires the produced assignment to hash to its pre-Evaluator
// golden value: the bit-identical-per-seed guarantee, enforced.
func TestMetaheuristicsGoldenAssignments(t *testing.T) {
	instances := make(map[[2]int64]*gap.Instance)
	for si, sh := range goldenShapes {
		for seed := int64(1); seed <= 3; seed++ {
			in, err := gap.Synthetic(sh.kind, sh.n, sh.m, sh.rho, seed)
			if err != nil {
				t.Fatalf("shape %d seed %d: %v", si, seed, err)
			}
			instances[[2]int64{int64(si), seed}] = in
		}
	}
	reg := NewRegistry()
	for _, g := range goldenHashes {
		g := g
		t.Run(fmt.Sprintf("shape%d/seed%d/%s", g.shape, g.seed, g.algo), func(t *testing.T) {
			in := instances[[2]int64{int64(g.shape), g.seed}]
			a, err := reg.New(g.algo, g.seed*100)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.Assign(in)
			if g.hash == "ERR" {
				if err == nil {
					t.Fatalf("expected deterministic error, got assignment %s", hashOf(got.Of))
				}
				return
			}
			if err != nil {
				t.Fatalf("Assign: %v", err)
			}
			if h := hashOf(got.Of); h != g.hash {
				t.Fatalf("assignment hash %s, golden %s — per-seed output changed", h, g.hash)
			}
		})
	}
}
