package assign

import (
	"math"
	"reflect"
	"testing"

	"taccc/internal/gap"
	"taccc/internal/obs"
)

// collectIters gathers a solver's iteration stream (single-goroutine
// solvers emit sequentially, so no locking is needed).
func collectIters() (*[]obs.IterEvent, obs.ProgressSink) {
	events := &[]obs.IterEvent{}
	return events, obs.ProgressFunc(func(ev obs.IterEvent) { *events = append(*events, ev) })
}

func progressInstance(t *testing.T) *gap.Instance {
	t.Helper()
	in, err := gap.Synthetic(gap.SyntheticUniform, 30, 5, 0.7, 7)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestWithProgressAttachesToIterativeAssigners(t *testing.T) {
	sink := obs.ProgressFunc(func(obs.IterEvent) {})
	for _, a := range []Assigner{
		NewQLearning(1), NewTabuSearch(1), NewLNS(1), NewGenetic(1), NewParallelPortfolio(1),
	} {
		if !WithProgress(a, sink) {
			t.Errorf("%s should report progress", a.Name())
		}
	}
	if WithProgress(NewGreedy(), sink) {
		t.Error("greedy is not iterative; WithProgress should refuse")
	}
}

func TestProgressStreamsAreConvergenceCurves(t *testing.T) {
	in := progressInstance(t)
	cases := []struct {
		algo  string
		make  func() Assigner
		iters int
	}{
		{"qlearning", func() Assigner { return NewQLearning(3) }, 400},
		{"tabu", func() Assigner { return NewTabuSearch(3) }, 0}, // move count varies (early stop)
		{"lns", func() Assigner { return NewLNS(3) }, 60},
		{"genetic", func() Assigner { return NewGenetic(3) }, 150},
	}
	for _, tc := range cases {
		events, sink := collectIters()
		a := tc.make()
		WithProgress(a, sink)
		if _, err := a.Assign(in); err != nil {
			t.Fatalf("%s: %v", tc.algo, err)
		}
		if len(*events) == 0 {
			t.Fatalf("%s: no iteration events", tc.algo)
		}
		if tc.iters > 0 && len(*events) != tc.iters {
			t.Errorf("%s: %d events, want %d", tc.algo, len(*events), tc.iters)
		}
		prev := math.Inf(1)
		for k, ev := range *events {
			if ev.Algo != tc.algo {
				t.Fatalf("%s: event %d has algo %q", tc.algo, k, ev.Algo)
			}
			if ev.Iter != k {
				t.Fatalf("%s: event %d has iter %d", tc.algo, k, ev.Iter)
			}
			if ev.Feasible && ev.BestCost > prev+1e-9 {
				t.Fatalf("%s: best cost regressed at iter %d: %v -> %v", tc.algo, k, prev, ev.BestCost)
			}
			if ev.Feasible {
				prev = ev.BestCost
			}
		}
	}
}

func TestPortfolioEmitsOneEventPerArm(t *testing.T) {
	in := progressInstance(t)
	for _, parallel := range []bool{false, true} {
		p := NewPortfolio(5)
		p.Parallel = parallel
		events, sink := collectIters()
		p.SetProgress(sink)
		got, err := p.Assign(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(*events) != 4 {
			t.Fatalf("parallel=%v: %d arm events, want 4", parallel, len(*events))
		}
		wantArms := []string{"regret-greedy", "local-search", "lagrangian", "qlearning"}
		bestArm := math.Inf(1)
		for k, ev := range *events {
			if ev.Algo != wantArms[k] || ev.Iter != k {
				t.Fatalf("parallel=%v: arm %d = %+v, want algo %s", parallel, k, ev, wantArms[k])
			}
			if ev.Feasible && ev.BestCost < bestArm {
				bestArm = ev.BestCost
			}
		}
		if c := in.TotalCost(got); math.Abs(c-bestArm) > 1e-9 {
			t.Fatalf("parallel=%v: winner cost %v, best arm event %v", parallel, c, bestArm)
		}
	}
}

// TestProgressDoesNotPerturbResults is the instrumentation contract: a
// solver with a sink attached returns exactly what it returns without one.
func TestProgressDoesNotPerturbResults(t *testing.T) {
	in := progressInstance(t)
	makers := map[string]func() Assigner{
		"qlearning": func() Assigner { return NewQLearning(11) },
		"tabu":      func() Assigner { return NewTabuSearch(11) },
		"lns":       func() Assigner { return NewLNS(11) },
		"genetic":   func() Assigner { return NewGenetic(11) },
		"portfolio": func() Assigner { return NewParallelPortfolio(11) },
	}
	for name, mk := range makers {
		plain := mk()
		want, err := plain.Assign(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		observed := mk()
		_, sink := collectIters()
		WithProgress(observed, sink)
		got, err := observed.Assign(in)
		if err != nil {
			t.Fatalf("%s with sink: %v", name, err)
		}
		if !reflect.DeepEqual(want.Of, got.Of) {
			t.Fatalf("%s: sink perturbed the assignment:\n%v\nvs\n%v", name, want.Of, got.Of)
		}
	}
}
