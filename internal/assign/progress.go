package assign

import "taccc/internal/obs"

// ProgressReporter is implemented by iterative assigners that can stream
// per-iteration convergence events (Q-learning episodes, tabu/LNS moves,
// genetic generations, portfolio arms) into an obs.ProgressSink.
//
// The sink is strictly observational: attaching one never touches the
// algorithm's random streams or decisions, so results are bit-identical
// with and without it. A nil sink (the default) disables emission with no
// overhead beyond a nil check per iteration.
type ProgressReporter interface {
	// SetProgress installs the sink for subsequent Assign calls; nil
	// detaches it.
	SetProgress(obs.ProgressSink)
}

// WithProgress attaches sink to a when the assigner reports progress,
// returning whether it does. Callers holding a bare Assigner (e.g. from
// the registry) use this instead of type-asserting themselves.
func WithProgress(a Assigner, sink obs.ProgressSink) bool {
	r, ok := a.(ProgressReporter)
	if ok {
		r.SetProgress(sink)
	}
	return ok
}
