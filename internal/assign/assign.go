// Package assign implements the paper's contribution: heuristics that
// assign IoT devices to edge devices so that total communication delay is
// (near-)minimal and no edge device is overloaded. The primary algorithm is
// the reinforcement-learning assigner (Q-learning over an episodic
// placement MDP); the rest of the package provides the baselines the paper
// compares against, from trivial (random, round-robin) through greedy and
// metaheuristics (local search, simulated annealing, genetic) to a
// Lagrangian-relaxation-guided heuristic.
//
// All algorithms implement Assigner and are registered in a name-indexed
// registry so the experiment harness can sweep over them generically.
// Every algorithm is deterministic given its seed.
package assign

import (
	"fmt"
	"math"
	"sort"

	"taccc/internal/gap"
)

// Assigner produces a feasible assignment for a GAP instance, or an error
// (wrapping gap.ErrInfeasible when no feasible assignment was found).
type Assigner interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Assign solves the instance. Implementations must not retain or
	// mutate the instance.
	Assign(in *gap.Instance) (*gap.Assignment, error)
}

// byDecreasingLoad returns device indices ordered by decreasing maximum
// weight (heaviest first), the canonical packing order: placing heavy
// devices first leaves flexibility for light ones.
func byDecreasingLoad(in *gap.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	maxW := make([]float64, in.N())
	for i := 0; i < in.N(); i++ {
		for j := 0; j < in.M(); j++ {
			if in.Weight[i][j] > maxW[i] {
				maxW[i] = in.Weight[i][j]
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return maxW[order[a]] > maxW[order[b]] })
	return order
}

// residuals returns a fresh copy of the instance capacities.
func residuals(in *gap.Instance) []float64 {
	r := make([]float64, in.M())
	copy(r, in.Capacity)
	return r
}

// fits reports whether device i can be placed on edge j given residual
// capacity, with a small epsilon for floating-point accumulation.
func fits(in *gap.Instance, residual []float64, i, j int) bool {
	return in.Weight[i][j] <= residual[j]+1e-12 && !math.IsInf(in.CostMs[i][j], 1)
}

// cheapestFeasible returns the minimum-cost edge for device i with residual
// capacity, or -1 if none fits.
func cheapestFeasible(in *gap.Instance, residual []float64, i int) int {
	best, bestCost := -1, math.Inf(1)
	for j := 0; j < in.M(); j++ {
		if fits(in, residual, i, j) && in.CostMs[i][j] < bestCost {
			best, bestCost = j, in.CostMs[i][j]
		}
	}
	return best
}

// finish validates of as a complete feasible assignment of in.
func finish(in *gap.Instance, of []int, algo string) (*gap.Assignment, error) {
	a, err := gap.NewAssignment(in, of)
	if err != nil {
		return nil, fmt.Errorf("assign/%s: %w", algo, err)
	}
	if !in.Feasible(a) {
		return nil, fmt.Errorf("assign/%s: produced overloaded assignment: %w", algo, gap.ErrInfeasible)
	}
	return a, nil
}

// Factory builds an assigner from a seed; the registry stores factories so
// each experiment replication gets an independently seeded instance.
type Factory func(seed int64) Assigner

// registryEntry pairs a canonical name with its factory.
type registryEntry struct {
	name    string
	factory Factory
}

// Registry is an ordered name->factory table of assignment algorithms.
type Registry struct {
	entries []registryEntry
}

// NewRegistry returns a registry pre-populated with every algorithm in this
// package, in report order (weak baselines first, the paper's algorithm
// last).
func NewRegistry() *Registry {
	r := &Registry{}
	r.Register("random", func(seed int64) Assigner { return NewRandom(seed) })
	r.Register("round-robin", func(int64) Assigner { return NewRoundRobin() })
	r.Register("first-fit", func(int64) Assigner { return NewFirstFit() })
	r.Register("greedy", func(int64) Assigner { return NewGreedy() })
	r.Register("regret-greedy", func(int64) Assigner { return NewRegretGreedy() })
	r.Register("local-search", func(seed int64) Assigner { return NewLocalSearch(seed) })
	r.Register("tabu", func(seed int64) Assigner { return NewTabuSearch(seed) })
	r.Register("lns", func(seed int64) Assigner { return NewLNS(seed) })
	r.Register("sim-anneal", func(seed int64) Assigner { return NewSimulatedAnnealing(seed) })
	r.Register("genetic", func(seed int64) Assigner { return NewGenetic(seed) })
	r.Register("lagrangian", func(seed int64) Assigner { return NewLagrangian(seed) })
	r.Register("lp-rounding", func(seed int64) Assigner { return NewLPRounding(seed) })
	r.Register("bandit", func(seed int64) Assigner { return NewBandit(seed) })
	r.Register("sarsa", func(seed int64) Assigner { return NewSARSA(seed) })
	r.Register("expected-sarsa", func(seed int64) Assigner { return NewExpectedSARSA(seed) })
	r.Register("double-qlearning", func(seed int64) Assigner { return NewDoubleQLearning(seed) })
	r.Register("nstep-qlearning", func(seed int64) Assigner { return NewNStepQLearning(seed) })
	r.Register("qlearning", func(seed int64) Assigner { return NewQLearning(seed) })
	r.Register("portfolio", func(seed int64) Assigner { return NewParallelPortfolio(seed) })
	r.Register("minmax", func(seed int64) Assigner { return NewMinMax(seed) })
	return r
}

// Register appends a factory under name, replacing any existing entry with
// the same name.
func (r *Registry) Register(name string, f Factory) {
	for i, e := range r.entries {
		if e.name == name {
			r.entries[i].factory = f
			return
		}
	}
	r.entries = append(r.entries, registryEntry{name: name, factory: f})
}

// Names returns the registered algorithm names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// New builds the named assigner with the given seed.
func (r *Registry) New(name string, seed int64) (Assigner, error) {
	for _, e := range r.entries {
		if e.name == name {
			return e.factory(seed), nil
		}
	}
	return nil, fmt.Errorf("assign: unknown algorithm %q (have %v)", name, r.Names())
}
