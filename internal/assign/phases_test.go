package assign

import (
	"reflect"
	"testing"

	"taccc/internal/gap"
	"taccc/internal/obs"
)

func phasesTestInstance(t *testing.T) *gap.Instance {
	t.Helper()
	in, err := gap.Synthetic(gap.SyntheticUniform, 40, 5, 0.8, 11)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestWithPhasesResultsBitIdentical pins the tracing carve-out on the
// solver side: attaching a phase tracer must not change any assignment.
func TestWithPhasesResultsBitIdentical(t *testing.T) {
	in := phasesTestInstance(t)
	mks := map[string]func() Assigner{
		"tabu":         func() Assigner { return NewTabuSearch(42) },
		"lns":          func() Assigner { return NewLNS(42) },
		"local-search": func() Assigner { return NewLocalSearch(42) },
		"sim-anneal":   func() Assigner { return NewSimulatedAnnealing(42) },
		"minmax":       func() Assigner { return NewMinMax(42) },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			plain := mk()
			want, err := plain.Assign(in)
			if err != nil {
				t.Fatal(err)
			}
			traced := mk()
			var col obs.SpanCollector
			tr := obs.NewTracer(&col, obs.WallClock())
			root := tr.Root("solve")
			if !WithPhases(traced, root) {
				t.Fatalf("%s does not implement PhasedSolver", name)
			}
			got, err := traced.Assign(in)
			root.End()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Of, want.Of) {
				t.Fatalf("%s: assignment differs with tracing attached", name)
			}
			if len(col.Spans()) == 0 {
				t.Fatalf("%s: no phase spans emitted", name)
			}
		})
	}
}

// TestSolverPhaseNames checks each solver emits its documented phases,
// parented under the span WithPhases attached.
func TestSolverPhaseNames(t *testing.T) {
	in := phasesTestInstance(t)
	cases := []struct {
		mk   func() Assigner
		want []string
	}{
		{func() Assigner { return NewTabuSearch(42) }, []string{"construction", "improvement"}},
		{func() Assigner { return NewLNS(42) }, []string{"construction", "improvement", "repair"}},
		{func() Assigner { return NewLocalSearch(42) }, []string{"construction", "improvement"}},
		{func() Assigner { return NewSimulatedAnnealing(42) }, []string{"construction", "improvement"}},
		{func() Assigner { return NewMinMax(42) }, []string{"construction", "polish"}},
	}
	for _, tc := range cases {
		a := tc.mk()
		t.Run(a.Name(), func(t *testing.T) {
			var col obs.SpanCollector
			tr := obs.NewTracer(&col, obs.WallClock())
			root := tr.Root("solve")
			WithPhases(a, root)
			if _, err := a.Assign(in); err != nil {
				t.Fatal(err)
			}
			root.End()
			names := map[string]bool{}
			for _, sp := range col.Spans() {
				names[sp.Name] = true
				if sp.Name != "solve" && sp.Parent == 0 {
					t.Fatalf("phase span %q has no parent", sp.Name)
				}
			}
			for _, w := range tc.want {
				if !names[w] {
					t.Fatalf("missing %q span; got %v", w, names)
				}
			}
		})
	}
}

// TestWithPhasesNonPhasedSolver: greedy has no phases; WithPhases must
// report false and leave it untouched.
func TestWithPhasesNonPhasedSolver(t *testing.T) {
	if WithPhases(NewGreedy(), nil) {
		t.Fatal("greedy unexpectedly implements PhasedSolver")
	}
}
