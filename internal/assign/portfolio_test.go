package assign

import (
	"errors"
	"testing"

	"taccc/internal/gap"
)

func TestPortfolioDominatesMembers(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 20, 4, 0.85, seed)
		members := []Assigner{
			NewRegretGreedy(), NewLocalSearch(seed), NewLagrangian(seed), NewQLearning(seed),
		}
		p := NewPortfolio(seed, members...)
		got, err := p.Assign(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		best := in.TotalCost(got)
		for _, m := range members {
			mg, err := m.Assign(in)
			if err != nil {
				continue
			}
			if best > in.TotalCost(mg)+1e-9 {
				t.Fatalf("seed %d: portfolio (%v) worse than member %s (%v)",
					seed, best, m.Name(), in.TotalCost(mg))
			}
		}
	}
}

func TestPortfolioParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in := mustSynthetic(t, gap.SyntheticUniform, 20, 4, 0.8, seed)
		seq := NewPortfolio(seed)
		par := NewPortfolio(seed)
		par.Parallel = true
		a, aerr := seq.Assign(in)
		b, berr := par.Assign(in)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("seed %d: error mismatch: %v vs %v", seed, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		if in.TotalCost(a) != in.TotalCost(b) {
			t.Fatalf("seed %d: parallel cost %v != sequential %v",
				seed, in.TotalCost(b), in.TotalCost(a))
		}
	}
}

func TestNewParallelPortfolioMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 24, 4, 0.85, seed)
		p := NewParallelPortfolio(seed)
		if !p.Parallel {
			t.Fatal("NewParallelPortfolio did not enable the concurrent path")
		}
		got, err := p.Assign(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := NewPortfolio(seed).Assign(in)
		if err != nil {
			t.Fatalf("seed %d: sequential twin failed: %v", seed, err)
		}
		if in.TotalCost(got) != in.TotalCost(want) {
			t.Fatalf("seed %d: parallel cost %v != sequential %v",
				seed, in.TotalCost(got), in.TotalCost(want))
		}
	}
}

// TestRegistryPortfolioIsParallel pins the registry's "portfolio" entry to
// the concurrent configuration so the parallel path is reachable from every
// public surface (facade, tacsolve, experiments).
func TestRegistryPortfolioIsParallel(t *testing.T) {
	a, err := NewRegistry().New("portfolio", 1)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := a.(*Portfolio)
	if !ok {
		t.Fatalf("registry portfolio is %T", a)
	}
	if !p.Parallel {
		t.Fatal("registry portfolio is sequential; parallel path is dead code again")
	}
	in := mustSynthetic(t, gap.SyntheticUniform, 20, 4, 0.8, 2)
	got, err := p.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(got) {
		t.Fatal("infeasible result")
	}
}

func TestPortfolioAllInfeasible(t *testing.T) {
	in := infeasibleInstance(t)
	if _, err := NewPortfolio(1).Assign(in); !errors.Is(err, gap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPortfolioDefaultMembers(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticUniform, 15, 3, 0.7, 1)
	got, err := NewPortfolio(1).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(got) {
		t.Fatal("infeasible result")
	}
}

func TestQLearningAblationSwitches(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticCorrelated, 15, 3, 0.85, 4)
	for _, mut := range []func(*RLParams){
		func(p *RLParams) { p.NoCostSeeding = true },
		func(p *RLParams) { p.NoWarmStart = true },
		func(p *RLParams) { p.UniformExploration = true },
		func(p *RLParams) { p.NoCostSeeding = true; p.NoWarmStart = true; p.UniformExploration = true },
	} {
		q := NewQLearning(4)
		mut(&q.Params)
		got, err := q.Assign(in)
		if err != nil {
			t.Fatalf("ablated variant failed: %v", err)
		}
		if !in.Feasible(got) {
			t.Fatal("ablated variant produced infeasible result")
		}
	}
}
