package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/xrand"
)

// Bandit is the stateless RL ablation: each device position runs an
// independent UCB1 bandit over edges, with feasibility masking. It sees no
// load signature, so it measures how much the Q-learning state actually
// buys (experiment F8).
type Bandit struct {
	// Episodes is the number of full placement rounds (default 400).
	Episodes int
	// Explore is the UCB exploration coefficient (default sqrt(2)).
	Explore float64
	seed    int64
}

// NewBandit returns a UCB bandit assigner with default parameters.
func NewBandit(seed int64) *Bandit { return &Bandit{seed: seed} }

// Name implements Assigner.
func (*Bandit) Name() string { return "bandit" }

// Assign implements Assigner.
func (b *Bandit) Assign(in *gap.Instance) (*gap.Assignment, error) {
	episodes := b.Episodes
	if episodes <= 0 {
		episodes = 400
	}
	explore := b.Explore
	if explore <= 0 {
		explore = math.Sqrt2
	}
	src := xrand.NewSplit(b.seed, "bandit")
	env := newMDP(in, 1)
	n, m := in.N(), in.M()

	// Per-position statistics.
	counts := make([][]float64, n)
	sums := make([][]float64, n)
	for t := range counts {
		counts[t] = make([]float64, m)
		sums[t] = make([]float64, m)
	}
	pulls := make([]float64, n)

	var actBuf []int
	of := make([]int, n)
	bestOf := make([]int, n)
	bestCost := math.Inf(1)
	found := false

	for ep := 0; ep < episodes; ep++ {
		env.reset()
		cost := 0.0
		feasibleRun := true
		for !env.done() {
			t := env.step
			actBuf = env.feasibleActions(actBuf)
			if len(actBuf) == 0 {
				feasibleRun = false
				break
			}
			a := ucbPick(counts[t], sums[t], pulls[t], actBuf, explore, src)
			i := env.device()
			r := env.take(a)
			cost -= r
			of[i] = a
			counts[t][a]++
			sums[t][a] += r
			pulls[t]++
		}
		if feasibleRun && cost < bestCost {
			bestCost = cost
			copy(bestOf, of)
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("assign/bandit: no feasible episode in %d attempts: %w", episodes, gap.ErrInfeasible)
	}
	return finish(in, bestOf, "bandit")
}

// ucbPick chooses among feasible arms by UCB1, preferring untried arms
// (random among them to break ties fairly).
func ucbPick(counts, sums []float64, total float64, feasible []int, explore float64, src *xrand.Source) int {
	var untried []int
	for _, a := range feasible {
		if counts[a] == 0 {
			untried = append(untried, a)
		}
	}
	if len(untried) > 0 {
		return untried[src.Intn(len(untried))]
	}
	best, bestV := feasible[0], math.Inf(-1)
	logT := math.Log(total + 1)
	for _, a := range feasible {
		v := sums[a]/counts[a] + explore*math.Sqrt(logT/counts[a])
		if v > bestV {
			best, bestV = a, v
		}
	}
	return best
}
