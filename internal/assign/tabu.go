package assign

import (
	"fmt"
	"math"
	"sort"

	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/xrand"
)

// TabuSearch escapes the local optima that plain hill climbing stalls in:
// every iteration applies the best feasible shift move even if it worsens
// the objective, while a tabu list forbids undoing recent moves; an
// aspiration criterion overrides the list when a move would produce a new
// incumbent.
//
// Move evaluation runs on the gap.Evaluator delta kernel: per-device
// candidate edges are pre-sorted by delay once, so the best-admissible
// scan walks each device's candidates in ascending delta and stops at the
// first admissible one (and abandons the device as soon as its deltas
// can no longer beat the global best) instead of re-pricing all n×m
// moves. The selected move is identical to the full scan's — including
// tie-breaking — so results are bit-identical to the classic
// implementation; only the work per iteration shrinks.
type TabuSearch struct {
	// Iters is the number of moves (default 2000).
	Iters int
	// Tenure is how many iterations a reversed move stays forbidden
	// (default n/4+3, set when 0).
	Tenure   int
	seed     int64
	progress obs.ProgressSink
	phases   *obs.Phase
}

// SetProgress implements ProgressReporter: sink receives one event per
// tabu move of subsequent Assign calls.
func (ts *TabuSearch) SetProgress(sink obs.ProgressSink) { ts.progress = sink }

// SetPhases implements PhasedSolver: subsequent Assign calls emit
// "construction" and "improvement" spans under parent.
func (ts *TabuSearch) SetPhases(parent *obs.Phase) { ts.phases = parent }

// NewTabuSearch returns a tabu-search assigner.
func NewTabuSearch(seed int64) *TabuSearch { return &TabuSearch{seed: seed} }

// Name implements Assigner.
func (*TabuSearch) Name() string { return "tabu" }

// moveCandidates builds, for every device, its reachable (finite-delay)
// edges sorted by ascending delay with index-ascending tie order — the
// order in which shift deltas ascend. Stored flat: device i's candidates
// are cands[start[i]:start[i+1]].
func moveCandidates(in *gap.Instance) (cands []int32, start []int32) {
	n, m := in.N(), in.M()
	cands = make([]int32, 0, n*m)
	start = make([]int32, n+1)
	for i := 0; i < n; i++ {
		start[i] = int32(len(cands))
		row := in.CostRow(i)
		for j := 0; j < m; j++ {
			if !math.IsInf(row[j], 1) {
				cands = append(cands, int32(j))
			}
		}
		ci := cands[start[i]:]
		sort.Slice(ci, func(a, b int) bool {
			ja, jb := ci[a], ci[b]
			if row[ja] != row[jb] {
				return row[ja] < row[jb]
			}
			return ja < jb
		})
	}
	start[n] = int32(len(cands))
	return cands, start
}

// Assign implements Assigner.
func (ts *TabuSearch) Assign(in *gap.Instance) (*gap.Assignment, error) {
	consPh := ts.phases.Child("construction")
	start, err := startFeasible(in, ts.seed)
	consPh.End()
	if err != nil {
		return nil, fmt.Errorf("assign/tabu: %w", err)
	}
	n, m := in.N(), in.M()
	iters := ts.Iters
	if iters <= 0 {
		iters = 2000
	}
	tenure := ts.Tenure
	if tenure <= 0 {
		tenure = n/4 + 3
	}

	ev := gap.NewEvaluator(in)
	ev.SetUndoTracking(false)
	ev.Reset(start.Of)
	bestOf := ev.Assignment(start.Of)
	bestCost := ev.Total()
	cands, candStart := moveCandidates(in)
	residual := ev.Residuals()
	of := ev.Placement()

	// tabuUntil[i*m+j] bans placing device i on edge j until that
	// iteration index.
	tabuUntil := make([]int, n*m)

	impPh := ts.phases.Child("improvement")
	defer impPh.End()
	impPh.SetAttr("iters", iters)
	for it := 0; it < iters; it++ {
		// Best admissible shift move across the whole neighborhood.
		bi, bj := -1, -1
		bestDelta := math.Inf(1)
		cur := ev.Total()
		for i := 0; i < n; i++ {
			curJ := of[i]
			cRow, wRow := in.CostRow(i), in.WeightRow(i)
			curCost := cRow[curJ]
			tabuRow := tabuUntil[i*m : (i+1)*m]
			for _, j32 := range cands[candStart[i]:candStart[i+1]] {
				j := int(j32)
				if j == curJ {
					continue
				}
				delta := cRow[j] - curCost
				if delta >= bestDelta {
					// Candidates ascend in delta: nothing further for
					// this device can strictly beat the incumbent move.
					break
				}
				if wRow[j] > residual[j]+1e-12 {
					continue // does not fit
				}
				if it < tabuRow[j] && cur+delta >= bestCost-1e-12 {
					continue // tabu and not aspirational
				}
				bestDelta, bi, bj = delta, i, j
				break // later candidates have delta >= bestDelta
			}
		}
		if bi < 0 {
			break // no admissible move
		}
		from := of[bi]
		ev.Move(bi, bj)
		// Forbid moving the device straight back.
		tabuUntil[bi*m+from] = it + tenure
		if ev.Total() < bestCost-1e-12 {
			bestCost = ev.Total()
			bestOf = ev.Assignment(bestOf)
		}
		obs.EmitIter(ts.progress, "tabu", it, bestCost, true)
	}
	return finish(in, bestOf, "tabu")
}

// LNS is a large-neighborhood search: repeatedly destroy a random fraction
// of the assignment (remove those devices) and repair it with regret-based
// reinsertion, accepting improvements. Destroy-and-repair escapes local
// structure that single-device moves cannot.
type LNS struct {
	// Iters is the number of destroy/repair rounds (default 60).
	Iters int
	// DestroyFrac is the fraction of devices removed each round
	// (default 0.25).
	DestroyFrac float64
	seed        int64
	progress    obs.ProgressSink
	phases      *obs.Phase
}

// SetProgress implements ProgressReporter: sink receives one event per
// destroy/repair round of subsequent Assign calls.
func (l *LNS) SetProgress(sink obs.ProgressSink) { l.progress = sink }

// SetPhases implements PhasedSolver: subsequent Assign calls emit
// "construction" and "improvement" spans under parent, with one "repair"
// child span per reinsertion round.
func (l *LNS) SetPhases(parent *obs.Phase) { l.phases = parent }

// NewLNS returns a large-neighborhood-search assigner.
func NewLNS(seed int64) *LNS { return &LNS{seed: seed} }

// Name implements Assigner.
func (*LNS) Name() string { return "lns" }

// Assign implements Assigner.
func (l *LNS) Assign(in *gap.Instance) (*gap.Assignment, error) {
	consPh := l.phases.Child("construction")
	start, err := startFeasible(in, l.seed)
	consPh.End()
	if err != nil {
		return nil, fmt.Errorf("assign/lns: %w", err)
	}
	src := xrand.NewSplit(l.seed, "lns")
	n := in.N()
	iters := l.Iters
	if iters <= 0 {
		iters = 60
	}
	frac := l.DestroyFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	k := int(float64(n)*frac) + 1

	bestOf := make([]int, n)
	copy(bestOf, start.Of)
	bestCost := in.TotalCost(start)

	// One evaluator and one permutation buffer serve every round: the
	// destroy/repair loop allocates nothing in steady state.
	ev := gap.NewEvaluator(in)
	ev.SetUndoTracking(false)
	var rein reinserter
	perm := make([]int, n)
	impPh := l.phases.Child("improvement")
	defer impPh.End()
	impPh.SetAttr("iters", iters)
	for it := 0; it < iters; it++ {
		ev.Reset(bestOf)
		// Destroy: remove k random devices.
		src.PermInto(perm)
		removed := perm[:k]
		for _, i := range removed {
			ev.Unassign(i)
		}
		// Repair: regret-based reinsertion over the removed set.
		repairStart := impPh.NowMs()
		repaired := rein.reinsert(ev, removed)
		impPh.Span("repair", repairStart, impPh.NowMs(), nil)
		if repaired {
			// Acceptance compares the canonical device-order re-sum, not
			// the incrementally drifted total, so decisions land exactly
			// where the classic full TotalCost re-cost put them.
			if c := ev.RecomputeTotal(); c < bestCost-1e-12 {
				bestCost = c
				bestOf = ev.Assignment(bestOf)
			}
		}
		obs.EmitIter(l.progress, "lns", it, bestCost, true)
	}
	return finish(in, bestOf, "lns")
}

// reinserter holds the pending-device buffer regret reinsertion reuses
// across rounds.
type reinserter struct {
	pending []int
}

// reinsert places the removed devices back through ev (largest regret
// first); reports success. Pending devices are scanned in removal order —
// never a map — so regret ties break the same way on every run and LNS
// stays deterministic for a fixed seed.
func (rs *reinserter) reinsert(ev *gap.Evaluator, removed []int) bool {
	in := ev.Instance()
	m := in.M()
	residual := ev.Residuals()
	pending := append(rs.pending[:0], removed...)
	rs.pending = pending
	for len(pending) > 0 {
		bestDev, bestEdge := -1, -1
		bestAt := -1
		bestRegret := math.Inf(-1)
		for at, i := range pending {
			first, second, firstJ := math.Inf(1), math.Inf(1), -1
			cRow, wRow := in.CostRow(i), in.WeightRow(i)
			for j := 0; j < m; j++ {
				if wRow[j] > residual[j]+1e-12 || math.IsInf(cRow[j], 1) {
					continue // does not fit
				}
				c := cRow[j]
				switch {
				case c < first:
					second, first, firstJ = first, c, j
				case c < second:
					second = c
				}
			}
			if firstJ < 0 {
				return false
			}
			regret := second - first
			if math.IsInf(second, 1) {
				regret = math.Inf(1)
			}
			if regret > bestRegret {
				bestRegret, bestDev, bestEdge, bestAt = regret, i, firstJ, at
			}
		}
		ev.Place(bestDev, bestEdge)
		pending = append(pending[:bestAt], pending[bestAt+1:]...)
	}
	return true
}
