package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/xrand"
)

// TabuSearch escapes the local optima that plain hill climbing stalls in:
// every iteration applies the best feasible shift move even if it worsens
// the objective, while a tabu list forbids undoing recent moves; an
// aspiration criterion overrides the list when a move would produce a new
// incumbent.
type TabuSearch struct {
	// Iters is the number of moves (default 2000).
	Iters int
	// Tenure is how many iterations a reversed move stays forbidden
	// (default n/4+3, set when 0).
	Tenure   int
	seed     int64
	progress obs.ProgressSink
}

// SetProgress implements ProgressReporter: sink receives one event per
// tabu move of subsequent Assign calls.
func (ts *TabuSearch) SetProgress(sink obs.ProgressSink) { ts.progress = sink }

// NewTabuSearch returns a tabu-search assigner.
func NewTabuSearch(seed int64) *TabuSearch { return &TabuSearch{seed: seed} }

// Name implements Assigner.
func (*TabuSearch) Name() string { return "tabu" }

// Assign implements Assigner.
func (ts *TabuSearch) Assign(in *gap.Instance) (*gap.Assignment, error) {
	start, err := startFeasible(in, ts.seed)
	if err != nil {
		return nil, fmt.Errorf("assign/tabu: %w", err)
	}
	n, m := in.N(), in.M()
	iters := ts.Iters
	if iters <= 0 {
		iters = 2000
	}
	tenure := ts.Tenure
	if tenure <= 0 {
		tenure = n/4 + 3
	}

	of := start.Of
	residual := residuals(in)
	for i, j := range of {
		residual[j] -= in.Weight[i][j]
	}
	cur := in.TotalCost(&gap.Assignment{Of: of})
	bestOf := make([]int, n)
	copy(bestOf, of)
	bestCost := cur

	// tabuUntil[i][j] bans placing device i on edge j until that
	// iteration index.
	tabuUntil := make([][]int, n)
	for i := range tabuUntil {
		tabuUntil[i] = make([]int, m)
	}

	for it := 0; it < iters; it++ {
		// Best admissible shift move across the whole neighborhood.
		bi, bj := -1, -1
		bestDelta := math.Inf(1)
		for i := 0; i < n; i++ {
			curJ := of[i]
			for j := 0; j < m; j++ {
				if j == curJ || !fits(in, residual, i, j) {
					continue
				}
				delta := in.CostMs[i][j] - in.CostMs[i][curJ]
				newCost := cur + delta
				if it < tabuUntil[i][j] && newCost >= bestCost-1e-12 {
					continue // tabu and not aspirational
				}
				if delta < bestDelta {
					bestDelta, bi, bj = delta, i, j
				}
			}
		}
		if bi < 0 {
			break // no admissible move
		}
		from := of[bi]
		residual[from] += in.Weight[bi][from]
		residual[bj] -= in.Weight[bi][bj]
		of[bi] = bj
		cur += bestDelta
		// Forbid moving the device straight back.
		tabuUntil[bi][from] = it + tenure
		if cur < bestCost-1e-12 {
			bestCost = cur
			copy(bestOf, of)
		}
		obs.EmitIter(ts.progress, "tabu", it, bestCost, true)
	}
	return finish(in, bestOf, "tabu")
}

// LNS is a large-neighborhood search: repeatedly destroy a random fraction
// of the assignment (remove those devices) and repair it with regret-based
// reinsertion, accepting improvements. Destroy-and-repair escapes local
// structure that single-device moves cannot.
type LNS struct {
	// Iters is the number of destroy/repair rounds (default 60).
	Iters int
	// DestroyFrac is the fraction of devices removed each round
	// (default 0.25).
	DestroyFrac float64
	seed        int64
	progress    obs.ProgressSink
}

// SetProgress implements ProgressReporter: sink receives one event per
// destroy/repair round of subsequent Assign calls.
func (l *LNS) SetProgress(sink obs.ProgressSink) { l.progress = sink }

// NewLNS returns a large-neighborhood-search assigner.
func NewLNS(seed int64) *LNS { return &LNS{seed: seed} }

// Name implements Assigner.
func (*LNS) Name() string { return "lns" }

// Assign implements Assigner.
func (l *LNS) Assign(in *gap.Instance) (*gap.Assignment, error) {
	start, err := startFeasible(in, l.seed)
	if err != nil {
		return nil, fmt.Errorf("assign/lns: %w", err)
	}
	src := xrand.NewSplit(l.seed, "lns")
	n := in.N()
	iters := l.Iters
	if iters <= 0 {
		iters = 60
	}
	frac := l.DestroyFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	k := int(float64(n)*frac) + 1

	bestOf := make([]int, n)
	copy(bestOf, start.Of)
	bestCost := in.TotalCost(start)

	work := make([]int, n)
	for it := 0; it < iters; it++ {
		copy(work, bestOf)
		residual := residuals(in)
		for i, j := range work {
			residual[j] -= in.Weight[i][j]
		}
		// Destroy: remove k random devices.
		perm := src.Perm(n)
		removed := perm[:k]
		for _, i := range removed {
			residual[work[i]] += in.Weight[i][work[i]]
			work[i] = -1
		}
		// Repair: regret-based reinsertion over the removed set.
		if regretReinsert(in, work, residual, removed) {
			if c := in.TotalCost(&gap.Assignment{Of: work}); c < bestCost-1e-12 {
				bestCost = c
				copy(bestOf, work)
			}
		}
		obs.EmitIter(l.progress, "lns", it, bestCost, true)
	}
	return finish(in, bestOf, "lns")
}

// regretReinsert places the removed devices back (largest regret first);
// reports success. Pending devices are scanned in removal order — never a
// map — so regret ties break the same way on every run and LNS stays
// deterministic for a fixed seed.
func regretReinsert(in *gap.Instance, of []int, residual []float64, removed []int) bool {
	pending := make([]int, len(removed))
	copy(pending, removed)
	for len(pending) > 0 {
		bestDev, bestEdge := -1, -1
		bestAt := -1
		bestRegret := math.Inf(-1)
		for at, i := range pending {
			first, second, firstJ := math.Inf(1), math.Inf(1), -1
			for j := 0; j < in.M(); j++ {
				if !fits(in, residual, i, j) {
					continue
				}
				c := in.CostMs[i][j]
				switch {
				case c < first:
					second, first, firstJ = first, c, j
				case c < second:
					second = c
				}
			}
			if firstJ < 0 {
				return false
			}
			regret := second - first
			if math.IsInf(second, 1) {
				regret = math.Inf(1)
			}
			if regret > bestRegret {
				bestRegret, bestDev, bestEdge, bestAt = regret, i, firstJ, at
			}
		}
		of[bestDev] = bestEdge
		residual[bestEdge] -= in.Weight[bestDev][bestEdge]
		pending = append(pending[:bestAt], pending[bestAt+1:]...)
	}
	return true
}
