package assign

import (
	"fmt"
	"math"
	"sort"

	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/xrand"
)

// MinMax minimizes the *maximum* per-device delay (min-max fairness — the
// objective that matters when the deployment's deadline is set by its
// worst-served device) instead of the total. It bisects over the sorted
// distinct delay values: at threshold T every cell with delay > T is
// masked infeasible and a constructive packer checks whether an
// overload-free assignment still exists. The smallest feasible T wins;
// total delay is then polished with local search *under the threshold
// mask* so the secondary objective doesn't regress the primary one.
type MinMax struct {
	seed   int64
	phases *obs.Phase
}

// SetPhases implements PhasedSolver: subsequent Assign calls emit a
// "construction" span for the threshold bisection and a "polish" span
// for the masked local search, under parent.
func (mm *MinMax) SetPhases(parent *obs.Phase) { mm.phases = parent }

// NewMinMax returns a min-max assigner.
func NewMinMax(seed int64) *MinMax { return &MinMax{seed: seed} }

// Name implements Assigner.
func (*MinMax) Name() string { return "minmax" }

// Assign implements Assigner.
func (mm *MinMax) Assign(in *gap.Instance) (*gap.Assignment, error) {
	// Candidate thresholds: every distinct finite cost.
	var costs []float64
	for i := 0; i < in.N(); i++ {
		for j := 0; j < in.M(); j++ {
			if c := in.CostMs[i][j]; !math.IsInf(c, 1) {
				costs = append(costs, c)
			}
		}
	}
	if len(costs) == 0 {
		return nil, fmt.Errorf("assign/minmax: no reachable pairs: %w", gap.ErrInfeasible)
	}
	sort.Float64s(costs)
	costs = dedupFloats(costs)

	// Bisection over threshold index. Feasibility at a threshold is
	// checked heuristically, so "feasible(T)" is not perfectly
	// monotone; bisection finds the smallest index the packer can
	// certify, which upper-bounds the true optimum.
	consPh := mm.phases.Child("construction")
	lo, hi := 0, len(costs)-1
	var best *gap.Assignment
	if a := mm.packUnder(in, costs[hi]); a != nil {
		best = a
	} else {
		consPh.End()
		return nil, fmt.Errorf("assign/minmax: infeasible even without a delay cap: %w", gap.ErrInfeasible)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if a := mm.packUnder(in, costs[mid]); a != nil {
			best = a
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	consPh.End()
	// Polish total delay while respecting the achieved threshold.
	polishPh := mm.phases.Child("polish")
	defer polishPh.End()
	masked := maskAbove(in, in.MaxCost(best))
	ev := gap.NewEvaluator(masked)
	ev.SetUndoTracking(false)
	ev.Reset(best.Of)
	for round := 0; round < 50; round++ {
		if !improveOnce(ev) {
			break
		}
	}
	return finish(in, ev.Assignment(best.Of), "minmax")
}

// packUnder tries to build a feasible assignment using only cells with
// delay <= t; nil when the packer fails.
func (mm *MinMax) packUnder(in *gap.Instance, t float64) *gap.Assignment {
	masked := maskAbove(in, t)
	a, err := startFeasible(masked, xrand.SplitSeed(mm.seed, fmt.Sprintf("minmax-%g", t)))
	if err != nil {
		return nil
	}
	return a
}

// maskAbove returns a copy of in whose cells with cost > t are unreachable.
func maskAbove(in *gap.Instance, t float64) *gap.Instance {
	n, m := in.N(), in.M()
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			c := in.CostMs[i][j]
			if c > t+1e-12 {
				c = math.Inf(1)
			}
			row[j] = c
		}
		cost[i] = row
	}
	// Weights and capacities are shared read-only.
	masked, err := gap.NewInstance(cost, in.Weight, in.Capacity)
	if err != nil {
		// Construction from a valid instance cannot fail.
		panic(fmt.Sprintf("assign/minmax: internal error building mask: %v", err))
	}
	return masked
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
