package assign

import (
	"errors"
	"math"
	"testing"

	"taccc/internal/gap"
)

func TestMinMaxReducesMaxDelay(t *testing.T) {
	worse := 0
	for seed := int64(0); seed < 8; seed++ {
		in := mustSynthetic(t, gap.SyntheticUniform, 25, 5, 0.8, seed)
		g, gerr := NewGreedy().Assign(in)
		m, merr := NewMinMax(seed).Assign(in)
		if gerr != nil || merr != nil {
			continue
		}
		if in.MaxCost(m) > in.MaxCost(g)+1e-9 {
			worse++
		}
	}
	if worse > 1 {
		t.Fatalf("minmax had worse max delay than greedy on %d/8 seeds", worse)
	}
}

func TestMinMaxFeasibleAndValid(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 20, 4, 0.8, seed)
		a, err := NewMinMax(seed).Assign(in)
		if err != nil {
			if errors.Is(err, gap.ErrInfeasible) {
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !in.Feasible(a) {
			t.Fatalf("seed %d: infeasible", seed)
		}
	}
}

func TestMinMaxOptimalOnCraftedInstance(t *testing.T) {
	// Two devices, two edges. Total-delay optimum puts both at max 9;
	// min-max optimum caps the max at 5.
	in, err := gap.NewInstance(
		[][]float64{
			{1, 5},
			{9, 4},
		},
		[][]float64{{3, 3}, {3, 3}},
		[]float64{3, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity forces one device per edge: options are (0,1): max 4...
	// costs: dev0->e0=1, dev1->e1=4 (max 4) or dev0->e1=5, dev1->e0=9
	// (max 9). Min-max must pick the first.
	a, err := NewMinMax(1).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.MaxCost(a); got != 4 {
		t.Fatalf("max delay = %v, want 4", got)
	}
}

func TestMinMaxInfeasible(t *testing.T) {
	in := infeasibleInstance(t)
	if _, err := NewMinMax(1).Assign(in); !errors.Is(err, gap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestMinMaxRegistered(t *testing.T) {
	reg := NewRegistry()
	a, err := reg.New("minmax", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "minmax" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestWithDeadlines(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticUniform, 10, 3, 0.6, 2)
	// Tight budget on device 0: only its cheapest cells survive.
	budgets := make([]float64, 10)
	minC := math.Inf(1)
	for j := 0; j < 3; j++ {
		if c := in.CostMs[0][j]; c < minC {
			minC = c
		}
	}
	budgets[0] = minC // only the single cheapest edge remains
	masked, err := gap.WithDeadlines(in, budgets)
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for j := 0; j < 3; j++ {
		if !math.IsInf(masked.CostMs[0][j], 1) {
			reachable++
		}
	}
	if reachable != 1 {
		t.Fatalf("device 0 has %d reachable cells, want 1", reachable)
	}
	a, err := NewGreedy().Assign(masked)
	if err != nil {
		t.Fatal(err)
	}
	v, err := gap.DeadlineViolations(in, a, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("masked solve still violates %d deadlines", v)
	}
	// Unmasked greedy may or may not violate; the counter must at least
	// run and agree with manual counting.
	g, err := NewGreedy().Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i, j := range g.Of {
		if budgets[i] > 0 && in.CostMs[i][j] > budgets[i] {
			want++
		}
	}
	got, err := gap.DeadlineViolations(in, g, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("violations = %d, want %d", got, want)
	}
}

func TestWithDeadlinesValidation(t *testing.T) {
	in := mustSynthetic(t, gap.SyntheticUniform, 5, 2, 0.6, 1)
	if _, err := gap.WithDeadlines(in, []float64{1}); err == nil {
		t.Error("short budget slice accepted")
	}
	a, err := NewGreedy().Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gap.DeadlineViolations(in, a, []float64{1}); err == nil {
		t.Error("short budget slice accepted by violations")
	}
	if _, err := gap.DeadlineViolations(in, &gap.Assignment{Of: []int{0}}, make([]float64, 5)); err == nil {
		t.Error("short assignment accepted by violations")
	}
}
