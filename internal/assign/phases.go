package assign

import "taccc/internal/obs"

// PhasedSolver is implemented by assigners that can emit wall-clock
// solver-phase spans — construction (building the initial feasible
// assignment), improvement (the metaheuristic main loop), repair
// (LNS reinsertion rounds) and polish (post-search refinement) — as
// children of a pipeline-trace phase.
//
// Like ProgressReporter, the plane is strictly observational and
// nil-safe: a nil parent (the default) disables emission, the only cost
// is a nil check at each phase boundary — never inside move loops — and
// results are bit-identical with tracing on or off.
type PhasedSolver interface {
	// SetPhases installs the parent phase for subsequent Assign calls;
	// nil detaches tracing.
	SetPhases(parent *obs.Phase)
}

// WithPhases attaches parent to a when the assigner emits solver-phase
// spans, returning whether it does. Callers holding a bare Assigner
// (e.g. from the registry) use this instead of type-asserting.
func WithPhases(a Assigner, parent *obs.Phase) bool {
	s, ok := a.(PhasedSolver)
	if ok {
		s.SetPhases(parent)
	}
	return ok
}
