package assign

import (
	"errors"
	"testing"

	"taccc/internal/gap"
)

func TestLPRoundingFeasibleAndGood(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := mustSynthetic(t, gap.SyntheticCorrelated, 20, 4, 0.8, seed)
		a, err := NewLPRounding(seed).Assign(in)
		if err != nil {
			if errors.Is(err, gap.ErrInfeasible) {
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !in.Feasible(a) {
			t.Fatalf("seed %d: infeasible result", seed)
		}
		// LP guidance should beat random comfortably.
		r, err := NewRandom(seed).Assign(in)
		if err != nil {
			continue
		}
		if in.TotalCost(a) > in.TotalCost(r) {
			t.Fatalf("seed %d: lp-rounding (%v) worse than random (%v)",
				seed, in.TotalCost(a), in.TotalCost(r))
		}
	}
}

func TestLPRoundingNearLPBoundWithSlack(t *testing.T) {
	// With generous capacity the LP optimum is integral (every device on
	// its cheapest edge) and rounding must recover it exactly.
	in, err := gap.NewInstance(
		[][]float64{{1, 9}, {8, 2}, {3, 7}},
		[][]float64{{1, 1}, {1, 1}, {1, 1}},
		[]float64{100, 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewLPRounding(1).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.TotalCost(a); got != 6 {
		t.Fatalf("TotalCost = %v, want 6 (1+2+3)", got)
	}
}

func TestLPRoundingInfeasible(t *testing.T) {
	in := infeasibleInstance(t)
	if _, err := NewLPRounding(1).Assign(in); !errors.Is(err, gap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestLPRoundingRegistered(t *testing.T) {
	reg := NewRegistry()
	a, err := reg.New("lp-rounding", 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "lp-rounding" {
		t.Fatalf("Name = %q", a.Name())
	}
}
