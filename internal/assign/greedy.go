package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/xrand"
)

// Greedy places devices heaviest-first, each on its cheapest edge with
// remaining capacity. This is the standard "nearest edge with room"
// strategy that topology-unaware deployments use, and the main
// state-of-the-art baseline in the evaluation.
type Greedy struct{}

// NewGreedy returns the greedy assigner.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Assigner.
func (*Greedy) Name() string { return "greedy" }

// Assign implements Assigner.
func (g *Greedy) Assign(in *gap.Instance) (*gap.Assignment, error) {
	of := make([]int, in.N())
	residual := residuals(in)
	for _, i := range byDecreasingLoad(in) {
		j := cheapestFeasible(in, residual, i)
		if j < 0 {
			return nil, fmt.Errorf("assign/greedy: device %d has no edge with capacity: %w", i, gap.ErrInfeasible)
		}
		of[i] = j
		residual[j] -= in.Weight[i][j]
	}
	return finish(in, of, "greedy")
}

// RegretGreedy is the Martello–Toth style constructive heuristic:
// repeatedly place the unassigned device whose penalty for not getting its
// best edge (second-best minus best feasible cost) is largest.
type RegretGreedy struct{}

// NewRegretGreedy returns the regret-based greedy assigner.
func NewRegretGreedy() *RegretGreedy { return &RegretGreedy{} }

// Name implements Assigner.
func (*RegretGreedy) Name() string { return "regret-greedy" }

// Assign implements Assigner.
func (rg *RegretGreedy) Assign(in *gap.Instance) (*gap.Assignment, error) {
	n := in.N()
	of := make([]int, n)
	assigned := make([]bool, n)
	residual := residuals(in)
	for placed := 0; placed < n; placed++ {
		bestDev, bestEdge := -1, -1
		bestRegret := math.Inf(-1)
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			first, second, firstJ := math.Inf(1), math.Inf(1), -1
			for j := 0; j < in.M(); j++ {
				if !fits(in, residual, i, j) {
					continue
				}
				c := in.CostMs[i][j]
				switch {
				case c < first:
					second, first, firstJ = first, c, j
				case c < second:
					second = c
				}
			}
			if firstJ < 0 {
				return nil, fmt.Errorf("assign/regret-greedy: device %d has no edge with capacity: %w", i, gap.ErrInfeasible)
			}
			regret := second - first
			if math.IsInf(second, 1) {
				// Only one feasible edge left: must place now.
				regret = math.Inf(1)
			}
			if regret > bestRegret {
				bestRegret, bestDev, bestEdge = regret, i, firstJ
			}
		}
		of[bestDev] = bestEdge
		assigned[bestDev] = true
		residual[bestEdge] -= in.Weight[bestDev][bestEdge]
	}
	return finish(in, of, "regret-greedy")
}

// FirstFit places devices in index order on the lowest-indexed edge with
// room, ignoring delay entirely — the capacity-only baseline.
type FirstFit struct{}

// NewFirstFit returns the first-fit assigner.
func NewFirstFit() *FirstFit { return &FirstFit{} }

// Name implements Assigner.
func (*FirstFit) Name() string { return "first-fit" }

// Assign implements Assigner.
func (ff *FirstFit) Assign(in *gap.Instance) (*gap.Assignment, error) {
	of := make([]int, in.N())
	residual := residuals(in)
	for i := 0; i < in.N(); i++ {
		placed := false
		for j := 0; j < in.M(); j++ {
			if fits(in, residual, i, j) {
				of[i] = j
				residual[j] -= in.Weight[i][j]
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("assign/first-fit: device %d has no edge with capacity: %w", i, gap.ErrInfeasible)
		}
	}
	return finish(in, of, "first-fit")
}

// RoundRobin cycles through edges, skipping full ones — the load-balancing
// baseline that spreads devices evenly regardless of delay.
type RoundRobin struct{}

// NewRoundRobin returns the round-robin assigner.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Assigner.
func (*RoundRobin) Name() string { return "round-robin" }

// Assign implements Assigner.
func (rr *RoundRobin) Assign(in *gap.Instance) (*gap.Assignment, error) {
	of := make([]int, in.N())
	residual := residuals(in)
	next := 0
	for i := 0; i < in.N(); i++ {
		placed := false
		for tries := 0; tries < in.M(); tries++ {
			j := (next + tries) % in.M()
			if fits(in, residual, i, j) {
				of[i] = j
				residual[j] -= in.Weight[i][j]
				next = (j + 1) % in.M()
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("assign/round-robin: device %d has no edge with capacity: %w", i, gap.ErrInfeasible)
		}
	}
	return finish(in, of, "round-robin")
}

// Random assigns each device to a uniformly random feasible edge — the
// floor any reasonable algorithm must beat.
type Random struct {
	seed int64
}

// NewRandom returns a random assigner with the given seed.
func NewRandom(seed int64) *Random { return &Random{seed: seed} }

// Name implements Assigner.
func (*Random) Name() string { return "random" }

// Assign implements Assigner.
func (r *Random) Assign(in *gap.Instance) (*gap.Assignment, error) {
	src := xrand.NewSplit(r.seed, "random-assign")
	of := make([]int, in.N())
	residual := residuals(in)
	// Heaviest-first still, so pure bad luck doesn't mask capacity
	// infeasibility that other algorithms would survive.
	for _, i := range byDecreasingLoad(in) {
		var feasible []int
		for j := 0; j < in.M(); j++ {
			if fits(in, residual, i, j) {
				feasible = append(feasible, j)
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("assign/random: device %d has no edge with capacity: %w", i, gap.ErrInfeasible)
		}
		j := feasible[src.Intn(len(feasible))]
		of[i] = j
		residual[j] -= in.Weight[i][j]
	}
	return finish(in, of, "random")
}
