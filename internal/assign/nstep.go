package assign

import (
	"fmt"
	"math"

	"taccc/internal/gap"
	"taccc/internal/xrand"
)

// NStepQLearning propagates reward information n steps back per update
// (episodic n-step Q-learning with per-episode batch updates): the TD
// target for step t is the discounted sum of the next n rewards plus a
// bootstrap from the best feasible action n steps ahead. Longer horizons
// move credit for capacity dead-ends toward the early placements that
// caused them. N = 1 recovers one-step targets.
type NStepQLearning struct {
	// Params tunes learning; zero fields take defaults.
	Params RLParams
	// N is the backup horizon (default 3).
	N    int
	seed int64
}

// NewNStepQLearning returns an n-step Q-learning assigner.
func NewNStepQLearning(seed int64) *NStepQLearning { return &NStepQLearning{seed: seed} }

// Name implements Assigner.
func (*NStepQLearning) Name() string { return "nstep-qlearning" }

// Assign implements Assigner.
func (nq *NStepQLearning) Assign(in *gap.Instance) (*gap.Assignment, error) {
	p := nq.Params.withDefaults()
	nStep := nq.N
	if nStep <= 0 {
		nStep = 3
	}
	src := xrand.NewSplit(nq.seed, "nstep-q")
	env := newMDPSeeded(in, p.LoadLevels, !p.NoCostSeeding)
	table := make(qtable, p.Episodes)
	var actBuf []int

	bestOf := make([]int, in.N())
	bestCost := math.Inf(1)
	found := false
	of := make([]int, in.N())

	if c, ok := greedyRollout(env, table, of); ok {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !p.NoWarmStart {
		if c, warm := warmStart(in); warm != nil && c < bestCost {
			bestCost = c
			copy(bestOf, warm)
			found = true
		}
	}

	// Per-step trajectory storage, reused across episodes.
	type step struct {
		row      []float64
		action   int
		reward   float64
		feasible []int
	}
	traj := make([]step, 0, in.N())

	eps := p.Epsilon0
	for ep := 0; ep < p.Episodes; ep++ {
		env.reset()
		traj = traj[:0]
		cost := 0.0
		feasibleRun := true
		for !env.done() {
			key := env.stateKey()
			actBuf = env.feasibleActions(actBuf)
			if len(actBuf) == 0 {
				feasibleRun = false
				break
			}
			row := table.row(key, env.rowInit[env.step])
			a := epsGreedyMode(row, actBuf, eps, src, p.UniformExploration)
			i := env.device()
			r := env.take(a)
			cost -= r
			of[i] = a
			traj = append(traj, step{
				row:      row,
				action:   a,
				reward:   r,
				feasible: append([]int(nil), actBuf...),
			})
		}
		// Terminal value: 0 for a completed episode, a large penalty
		// for a dead end (the trajectory is punished through its tail).
		terminal := 0.0
		if !feasibleRun {
			terminal = -deadEndPenalty(in)
		}
		// Batch n-step backward updates against the current table.
		T := len(traj)
		for t := 0; t < T; t++ {
			g := 0.0
			discount := 1.0
			end := t + nStep
			if end > T {
				end = T
			}
			for k := t; k < end; k++ {
				g += discount * traj[k].reward
				discount *= p.Gamma
			}
			if end < T {
				// Bootstrap from the state entered at step `end`,
				// which is the state acted on at index `end` of
				// the trajectory.
				_, nv := bestQ(traj[end].row, traj[end].feasible)
				g += discount * nv
			} else {
				g += discount * terminal
			}
			traj[t].row[traj[t].action] += p.Alpha * (g - traj[t].row[traj[t].action])
		}
		if feasibleRun && cost < bestCost {
			bestCost = cost
			copy(bestOf, of)
			found = true
		}
		eps *= p.EpsilonDecay
		if eps < p.EpsilonMin {
			eps = p.EpsilonMin
		}
	}
	if c, ok := greedyRollout(env, table, of); ok && c < bestCost {
		bestCost = c
		copy(bestOf, of)
		found = true
	}
	if !found {
		return nil, fmt.Errorf("assign/nstep-qlearning: no feasible episode in %d attempts: %w", p.Episodes, gap.ErrInfeasible)
	}
	return finish(in, bestOf, "nstep-qlearning")
}
