package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF output lets CI surface taclint findings as code annotations:
// GitHub's upload-sarif action turns each result into a PR annotation at
// the flagged line. The writer emits the minimal valid slice of SARIF
// 2.1.0 — one run, one tool, rule metadata for every analyzer, one
// physical location per result — and the reader is deliberately strict
// (unknown fields, missing locations or undeclared rule ids are errors)
// so the round-trip test pins the schema down instead of trusting it.

// sarifVersion and sarifSchema identify the emitted document.
const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes findings as a SARIF 2.1.0 document. The rule table
// carries every analyzer in the suite plus the "allow" pseudo-rule for
// malformed directives, so a clean run still documents what was checked
// and every possible result has a declared ruleId. File URIs are
// slash-separated and relative to dir when possible, the shape GitHub
// needs to anchor annotations in the checkout.
func WriteSARIF(w io.Writer, findings []Finding, dir string) error {
	rules := []sarifRule{{
		ID:               "allow",
		ShortDescription: sarifMessage{Text: "malformed //lint:allow directive"},
	}}
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	// results must be a JSON array even when empty: GitHub rejects null.
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if dir != "" {
			if rel, ok := strings.CutPrefix(uri, dir+string(filepath.Separator)); ok {
				uri = rel
			} else if rel, ok := strings.CutPrefix(uri, dir+"/"); ok {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}

	doc := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "taclint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// ReadSARIF parses and validates a document written by WriteSARIF and
// reconstructs its findings. It is strict on purpose: unknown fields,
// a version other than 2.1.0, anything but exactly one run, a result
// whose ruleId the driver did not declare, a result without a location,
// or a region before line 1 are all errors.
func ReadSARIF(r io.Reader) ([]Finding, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc sarifLog
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("sarif: %w", err)
	}
	if doc.Version != sarifVersion {
		return nil, fmt.Errorf("sarif: version %q, want %q", doc.Version, sarifVersion)
	}
	if len(doc.Runs) != 1 {
		return nil, fmt.Errorf("sarif: %d runs, want exactly 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name == "" {
		return nil, fmt.Errorf("sarif: missing tool.driver.name")
	}
	declared := make(map[string]bool, len(run.Tool.Driver.Rules))
	for _, rule := range run.Tool.Driver.Rules {
		if rule.ID == "" {
			return nil, fmt.Errorf("sarif: rule with empty id")
		}
		declared[rule.ID] = true
	}
	findings := make([]Finding, 0, len(run.Results))
	for i, res := range run.Results {
		if !declared[res.RuleID] {
			return nil, fmt.Errorf("sarif: result %d has undeclared ruleId %q", i, res.RuleID)
		}
		if len(res.Locations) == 0 {
			return nil, fmt.Errorf("sarif: result %d has no location", i)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" {
			return nil, fmt.Errorf("sarif: result %d has no artifact uri", i)
		}
		if loc.Region.StartLine < 1 {
			return nil, fmt.Errorf("sarif: result %d has startLine %d, want >= 1", i, loc.Region.StartLine)
		}
		f := Finding{Analyzer: res.RuleID, Message: res.Message.Text}
		f.Pos.Filename = loc.ArtifactLocation.URI
		f.Pos.Line = loc.Region.StartLine
		f.Pos.Column = loc.Region.StartColumn
		findings = append(findings, f)
	}
	return findings, nil
}
