package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Sinkerr enforces the loud-failure contract PR 3's /dev/full tests pin
// down: a command that was asked to write an event stream (-events,
// -archive) must exit nonzero when the bytes did not reach disk. The
// JSONL sink latches its first write error and reports it from Flush;
// Events.Close folds the flush error into the close error — so the one
// way to lose the error is for a command to drop the return value of
// Flush or Close.
//
// Flagged shapes, for methods named Flush or Close returning an error
// whose receiver type is declared in an event-sink package (internal/obs,
// internal/obs/runlog, internal/cliutil — or any package path ending in
// /obs, /runlog or /cliutil):
//
//	stream.Close()          // bare call
//	defer stream.Close()    // deferred, error unrecoverable
//	go stream.Close()       // goroutine, error unrecoverable
//	_ = stream.Close()      // explicit discard
//
// A deferred Close that exists only as a backstop for early error
// returns — with the success path checking Close explicitly — is the
// legitimate exception; annotate it with //lint:allow sinkerr <reason>.
var Sinkerr = &Analyzer{
	Name: "sinkerr",
	Doc:  "commands must not drop the error from an event-sink Flush/Close",
	Run:  runSinkerr,
}

func runSinkerr(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkDroppedSinkErr(p, s.X, "")
			case *ast.DeferStmt:
				checkDroppedSinkErr(p, s.Call, "deferred ")
			case *ast.GoStmt:
				checkDroppedSinkErr(p, s.Call, "")
			case *ast.AssignStmt:
				allBlank := true
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if allBlank {
					for _, rhs := range s.Rhs {
						checkDroppedSinkErr(p, rhs, "")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkDroppedSinkErr(p *Pass, e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if name := sel.Sel.Name; name != "Flush" && name != "Close" {
		return
	}
	selection := p.TypesInfo.Selections[sel]
	if selection == nil {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || !returnsError(fn) {
		return
	}
	named := receiverNamedType(fn)
	if named == nil {
		return
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !isSinkPackagePath(pkg.Path()) {
		return
	}
	p.Reportf(call.Pos(), "%serror from (*%s).%s is dropped; event-sink flush/close failures must surface (check the error, or annotate with //lint:allow sinkerr <reason>)", how, named.Obj().Name(), sel.Sel.Name)
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return last.String() == "error"
}

func receiverNamedType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isSinkPackagePath reports whether path declares event-sink types: the
// obs layer, its runlog archive writer, and the cliutil Events wrapper.
// Matching by path suffix keeps the analyzer testable against fixture
// packages named plain "obs".
func isSinkPackagePath(path string) bool {
	for _, suffix := range []string{"obs", "runlog", "cliutil"} {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}
