package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Fpfold polices floating-point reduction order. FP addition (and
// multiplication) is not associative: (a+b)+c and a+(b+c) differ in the
// last bits, so a float fold is only deterministic when the operands
// arrive in a fixed order. Two loop shapes violate that by construction:
//
//   - a range over a map folds in Go's deliberately randomized iteration
//     order, so the same data produces run-dependent last bits — the
//     exact drift that breaks the byte-identical archive set;
//   - a range over a channel folds in arrival order, which for a
//     fan-in of per-worker shard results is scheduling order.
//
// Accumulating into a per-key slot (out[k] += v, each key visited
// exactly once) is deterministic and exempt; so are integer
// accumulators, comparisons (min/max folds commute), and folds that
// first sort the keys and range over the resulting slice — the repo's
// collect-then-sort idiom. Everything else either restructures onto
// fixed index order or documents itself with //lint:allow fpfold.
var Fpfold = &Analyzer{
	Name: "fpfold",
	Doc:  "forbid floating-point accumulation in map-range or channel-range order; fold in fixed index order",
	Run:  runFpfold,
}

func runFpfold(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			var over string
			switch t.Underlying().(type) {
			case *types.Map:
				over = "map"
			case *types.Chan:
				over = "channel"
			default:
				return true
			}
			var keyObj, valObj types.Object
			if over == "map" {
				if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
					keyObj = objectOf(p.TypesInfo, id)
				}
			}
			valExpr := rs.Value
			if over == "channel" {
				valExpr = rs.Key // a channel range binds the element to Key
			}
			if id, ok := valExpr.(*ast.Ident); ok && id.Name != "_" {
				valObj = objectOf(p.TypesInfo, id)
			}
			checkFold(p, rs.Body, over, keyObj, valObj)
			return true
		})
	}
	return nil
}

// checkFold flags floating-point accumulation anywhere inside body —
// including nested fixed-order loops, whose per-outer-iteration partial
// sums still merge in the outer range's order. Nested map/channel ranges
// are skipped; the outer walk visits them as ranges in their own right.
func checkFold(p *Pass, body *ast.BlockStmt, over string, keyObj, valObj types.Object) {
	floatTyped := func(e ast.Expr) bool {
		t := p.TypesInfo.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
	}
	// perElement: the write lands in per-element state — an element
	// indexed by exactly the range key (each slot accumulates at most once
	// per iteration), or a field reached through the range value variable
	// (each iteration updates the element it just received, as in
	// j.remaining -= done over a job map). Neither folds across
	// iterations, so order cannot matter. An index merely derived from the
	// key (hist[k/10]) can collide across keys and stays flagged.
	perElement := func(lhs ast.Expr) bool {
		if valObj != nil {
			if root := rootIdent(lhs); root != nil && objectOf(p.TypesInfo, root) == valObj {
				return true
			}
		}
		if keyObj == nil {
			return false
		}
		for {
			switch e := lhs.(type) {
			case *ast.ParenExpr:
				lhs = e.X
			case *ast.IndexExpr:
				if id, ok := unparen(e.Index).(*ast.Ident); ok && objectOf(p.TypesInfo, id) == keyObj {
					return true
				}
				lhs = e.X
			case *ast.SelectorExpr:
				lhs = e.X
			case *ast.StarExpr:
				lhs = e.X
			default:
				return false
			}
		}
	}
	report := func(pos token.Pos) {
		switch over {
		case "map":
			p.Reportf(pos, "floating-point accumulation inside a map range folds in randomized iteration order (FP addition is not associative); fold over sorted keys or into per-key slots, or annotate with //lint:allow fpfold <reason>")
		default:
			p.Reportf(pos, "floating-point accumulation inside a channel range folds in arrival order (FP addition is not associative); collect into per-index slots and fold sequentially, or annotate with //lint:allow fpfold <reason>")
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := p.TypesInfo.TypeOf(rs.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Chan:
					return false // its own range; checked by the outer walk
				}
			}
			return true
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if floatTyped(st.Lhs[0]) && !perElement(st.Lhs[0]) {
				report(st.Pos())
			}
		case token.ASSIGN:
			// The spelled-out form: sum = sum + v (or v + sum, sum*f, ...).
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 || !floatTyped(st.Lhs[0]) || perElement(st.Lhs[0]) {
				return true
			}
			root := rootIdent(st.Lhs[0])
			if root == nil {
				return true
			}
			obj := objectOf(p.TypesInfo, root)
			if obj == nil {
				return true
			}
			if selfArithmetic(p.TypesInfo, st.Rhs[0], obj) {
				report(st.Pos())
			}
		}
		return true
	})
}

// selfArithmetic reports whether rhs combines obj with other operands
// through +, -, * or / — the accumulation shape. A bare reassignment
// (worst = v) or an order-independent fold (math.Max) is not arithmetic
// self-reference.
func selfArithmetic(info *types.Info, rhs ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return !found
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if mentionsObject(info, be.X, obj) || mentionsObject(info, be.Y, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
