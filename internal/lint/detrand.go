package lint

import (
	"go/ast"
)

// Detrand enforces the determinism contract of the solver-side packages:
// a (seed, configuration) pair must fully determine every result, at any
// -workers setting. Two things break that silently:
//
//   - wall-clock reads: time.Now / time.Since / time.Until — and the
//     timer constructors (Sleep, After, Tick, NewTimer, NewTicker,
//     AfterFunc), which couple control flow to real elapsed time — make
//     any value derived from them run-dependent;
//   - math/rand: the top-level functions share unseeded global state, and
//     even a locally constructed rand.Rand bypasses internal/xrand's
//     split-stream seeding, so two subsystems seeded from the same root
//     seed would correlate or diverge across refactors.
//
// Any reference to math/rand (or math/rand/v2) is flagged — functions,
// the Rand/Source types, and methods on a smuggled *rand.Rand alike —
// because the deterministic packages are expected to hold an
// *xrand.Source instead. Wall-clock timing goes through obs.Clock
// (obs.WallClock for real time, obs.ManualClock in tests); the clock's
// own implementation carries the repository's only //lint:allow detrand
// annotations, making it the single sanctioned wall-clock entry point.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads, timers, and math/rand in the deterministic packages; time flows through obs.Clock, randomness through internal/xrand",
	Run:  runDetrand,
}

// wallClockFuncs are the time package functions that read the wall clock,
// directly (Now/Since/Until) or by scheduling against it (the sleep/timer
// constructors).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runDetrand(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := objectOf(p.TypesInfo, sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; route timing through obs.Clock (obs.WallClock is the one sanctioned entry point) or annotate measurement-only uses with //lint:allow detrand <reason>", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "%s.%s bypasses the seeded split-stream layer; draw randomness from internal/xrand (or annotate with //lint:allow detrand <reason>)", obj.Pkg().Path(), obj.Name())
			}
			return true
		})
	}
	return nil
}
