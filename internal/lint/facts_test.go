package lint

import (
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// TestFactStoreRoundTrip exercises the store through the Pass API the
// analyzers use: export on one pass, import on another, keyed by
// analyzer name and object identity.
func TestFactStoreRoundTrip(t *testing.T) {
	pkgA := types.NewPackage("taccc/internal/a", "a")
	pkgB := types.NewPackage("taccc/internal/b", "b")
	objA := types.NewVar(token.Pos(10), pkgA, "x", types.Typ[types.Int])
	objB := types.NewVar(token.Pos(5), pkgB, "y", types.Typ[types.Int])

	store := NewFactStore()
	export := &Pass{Analyzer: Taintclock, facts: store}
	export.ExportObjectFact(objA, &ClockTaint{Chain: []string{"time.Now"}})
	export.ExportObjectFact(objB, &ClockTaint{Chain: []string{"helper", "time.Now"}})

	imp := &Pass{Analyzer: Taintclock, facts: store}
	f, ok := imp.ImportObjectFact(objA)
	if !ok {
		t.Fatalf("fact for objA not found after export")
	}
	ct, ok := f.(*ClockTaint)
	if !ok || ct.String() != "tainted: time.Now" {
		t.Errorf("imported fact = %v, want tainted: time.Now", f)
	}
	if _, ok := imp.ImportObjectFact(types.NewVar(token.NoPos, pkgA, "z", types.Typ[types.Int])); ok {
		t.Errorf("fact found for an object none was exported for")
	}

	// Facts are namespaced per analyzer: parshare sees nothing of
	// taintclock's exports.
	other := &Pass{Analyzer: Parshare, facts: store}
	if _, ok := other.ImportObjectFact(objA); ok {
		t.Errorf("fact leaked across analyzer namespaces")
	}

	// AnalyzerFacts orders by package path, then position: a before b.
	facts := store.AnalyzerFacts(Taintclock.Name)
	if len(facts) != 2 {
		t.Fatalf("AnalyzerFacts returned %d facts, want 2", len(facts))
	}
	if facts[0].Object != objA || facts[1].Object != objB {
		t.Errorf("AnalyzerFacts order = [%v %v], want [objA objB]", facts[0].Object, facts[1].Object)
	}
}

// TestFactAPIWithoutStore pins the nil-store behavior: a Pass outside a
// driver run (a unit-driven analyzer) neither panics nor remembers.
func TestFactAPIWithoutStore(t *testing.T) {
	pkg := types.NewPackage("taccc/internal/a", "a")
	obj := types.NewVar(token.NoPos, pkg, "x", types.Typ[types.Int])
	p := &Pass{Analyzer: Taintclock}
	p.ExportObjectFact(obj, &ClockTaint{Chain: []string{"time.Now"}})
	if _, ok := p.ImportObjectFact(obj); ok {
		t.Errorf("fact survived without a store")
	}
}

// TestCrossPackageFactFlow loads the taintclock fixture tree through the
// real driver and checks that facts exported while analyzing the helper
// dependency are visible — object identity intact — when the importing
// package is analyzed: the laundered two-hop chain is reconstructed in
// full at the importer's call site.
func TestCrossPackageFactFlow(t *testing.T) {
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := NewSourceLoader(srcRoot)
	findings, store, err := RunWithFacts(l, []string{"taintclock"}, []Rule{
		{Analyzer: Taintclock, Match: func(string) bool { return true }},
	})
	if err != nil {
		t.Fatalf("RunWithFacts: %v", err)
	}

	chains := make(map[string]string) // "pkg.Func" -> chain
	for _, ef := range store.AnalyzerFacts(Taintclock.Name) {
		ct, ok := ef.Fact.(*ClockTaint)
		if !ok {
			t.Fatalf("unexpected fact type %T", ef.Fact)
		}
		chains[ef.Object.Pkg().Path()+"."+ef.Object.Name()] = strings.Join(ct.Chain, " -> ")
	}
	for fn, want := range map[string]string{
		"taintclock/helper.Wrap":  "stamp -> time.Now",
		"taintclock/helper.stamp": "time.Now",
		"taintclock.useLaundered": "helper.Wrap -> stamp -> time.Now",
	} {
		if chains[fn] != want {
			t.Errorf("fact chain for %s = %q, want %q (all: %v)", fn, chains[fn], want, chains)
		}
	}
	if got, ok := chains["taintclock/helper.Pure"]; ok {
		t.Errorf("untainted helper.Pure exported a fact: %q", got)
	}

	laundered := false
	for _, f := range findings {
		if strings.Contains(f.Message, "helper.Wrap -> stamp -> time.Now") {
			laundered = true
		}
	}
	if !laundered {
		t.Errorf("laundered chain not reported at the importer's call site: %v", findings)
	}
}
