package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Hotloop polices the metaheuristic hot path: gap.Instance.TotalCost
// re-prices every device against every edge, so calling it from inside a
// loop turns an O(1)-per-iteration search step into an O(n) one — the
// exact regression the incremental gap.Evaluator kernel exists to
// prevent. Any TotalCost call whose receiver type comes from the gap
// package and whose call site sits in loop-repeated position (a for or
// range body, a for condition or post statement — including inside
// function literals defined there) is flagged. One-shot uses — seeding an
// incumbent before the loop, the final re-cost after it — are either
// outside loops or annotated with //lint:allow hotloop <reason>.
var Hotloop = &Analyzer{
	Name: "hotloop",
	Doc:  "forbid gap TotalCost calls inside loop bodies in the solver packages; iterate with gap.Evaluator deltas instead",
	Run:  runHotloop,
}

// hotSpan is one loop-repeated source region: code positioned inside it
// executes once per iteration, not once per loop.
type hotSpan struct{ lo, hi token.Pos }

func runHotloop(p *Pass) error {
	for _, f := range p.Files {
		// First pass: collect every loop-repeated region. A for statement
		// re-evaluates its condition, post statement and body each
		// iteration (the init clause runs once); a range statement
		// re-executes only its body (the range expression is evaluated
		// once).
		var hot []hotSpan
		add := func(n ast.Node) {
			if n != nil {
				hot = append(hot, hotSpan{lo: n.Pos(), hi: n.End()})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt:
				add(s.Cond)
				add(s.Post)
				add(s.Body)
			case *ast.RangeStmt:
				add(s.Body)
			}
			return true
		})
		inHot := func(pos token.Pos) bool {
			for _, h := range hot {
				if h.lo <= pos && pos < h.hi {
					return true
				}
			}
			return false
		}

		// Second pass: flag TotalCost selections resolving into a gap
		// package at loop-repeated positions. Position containment (rather
		// than a traversal flag) makes nesting and function literals
		// inside loop bodies fall out for free.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "TotalCost" || !inHot(call.Pos()) {
				return true
			}
			obj := objectOf(p.TypesInfo, sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if path := obj.Pkg().Path(); path != "gap" && !strings.HasSuffix(path, "/gap") {
				return true
			}
			p.Reportf(call.Pos(), "gap TotalCost inside a loop re-prices the whole assignment every iteration; price the step with gap.Evaluator deltas (DeltaMove/DeltaSwap) or hoist the call, or annotate with //lint:allow hotloop <reason>")
			return true
		})
	}
	return nil
}
