package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Parshare machine-checks the determinism contract that every
// internal/par call site in the repository hand-follows today: the
// closure handed to a par entry point runs concurrently on many workers
// in scheduling order, so it may write only
//
//   - state owned by its index — an element reached through an index
//     expression that depends on the closure's index parameter
//     (out[i] = ..., m[row][i].Field = ...), or
//   - a documented shared sink guarded by a captured sync.Mutex /
//     sync.RWMutex, between a Lock() and the matching Unlock() (a
//     deferred Unlock keeps the window open to the end of the closure).
//
// Everything else — appending to a captured slice, bumping a captured
// counter, folding into a captured accumulator — lands in
// worker-scheduling order and silently breaks the bit-identical-at-any-
// worker-count invariant; it is also exactly the shape the race detector
// only catches when the schedule cooperates. Parshare is the static
// complement: it flags the write every time.
var Parshare = &Analyzer{
	Name: "parshare",
	Doc:  "closures passed to internal/par entry points may write only per-index slots or mutex-guarded sinks",
	Run:  runParshare,
}

// parEntryPoints are the internal/par functions that fan a closure out
// across workers.
var parEntryPoints = map[string]bool{
	"For": true, "ForShards": true, "ForErr": true, "Map": true, "MapErr": true,
}

// isParPackage matches internal/par by path, the way hotloop matches
// gap, so fixtures under testdata/src/par exercise the analyzer without
// the module prefix.
func isParPackage(path string) bool {
	return path == "par" || strings.HasSuffix(path, "/par")
}

func runParshare(p *Pass) error {
	for _, f := range p.Files {
		// Collect every par closure in the file first, so that when one
		// par call nests inside another's closure, each body is checked
		// only against its own index parameter.
		type parClosure struct {
			entry string
			lit   *ast.FuncLit
		}
		var closures []parClosure
		isParClosure := make(map[*ast.FuncLit]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := parEntryPointCall(p.TypesInfo, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			closures = append(closures, parClosure{entry: name, lit: lit})
			isParClosure[lit] = true
			return true
		})
		for _, c := range closures {
			checkParClosure(p, c.entry, c.lit, isParClosure)
		}
	}
	return nil
}

// parEntryPointCall reports whether call invokes a par entry point and
// returns its name.
func parEntryPointCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if !isParPackage(fn.Pkg().Path()) || !parEntryPoints[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

func checkParClosure(p *Pass, entry string, lit *ast.FuncLit, isParClosure map[*ast.FuncLit]bool) {
	// inspect is ast.Inspect over the closure body, stopping at nested
	// par closures — those are checked separately against their own
	// index parameter.
	inspect := func(fn func(ast.Node) bool) {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && fl != lit && isParClosure[fl] {
				return false
			}
			return fn(n)
		})
	}

	// The index parameter is the closure's first parameter; writes
	// indexed by it own their slot.
	var idxObj types.Object
	if params := lit.Type.Params; params != nil && len(params.List) > 0 && len(params.List[0].Names) > 0 {
		name := params.List[0].Names[0]
		if name.Name != "_" {
			idxObj = p.TypesInfo.Defs[name]
		}
	}

	captured := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		if _, ok := obj.(*types.Var); !ok {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
	}

	// Mutex windows: Lock/Unlock calls on captured sync mutexes, with
	// deferred Unlocks excluded so `mu.Lock(); defer mu.Unlock()` keeps
	// the window open to the end of the closure.
	deferredCalls := make(map[*ast.CallExpr]bool)
	inspect(func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
		}
		return true
	})
	var locks, unlocks []token.Pos
	inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" && sel.Sel.Name != "RLock" && sel.Sel.Name != "RUnlock") {
			return true
		}
		fn, _ := objectOf(p.TypesInfo, sel.Sel).(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || !captured(objectOf(p.TypesInfo, root)) {
			return true // a closure-local mutex guards nothing across workers
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			locks = append(locks, call.Pos())
		default:
			if !deferredCalls[call] {
				unlocks = append(unlocks, call.Pos())
			}
		}
		return true
	})
	guarded := func(pos token.Pos) bool {
		last := token.NoPos
		for _, l := range locks {
			if l < pos && l > last {
				last = l
			}
		}
		if last == token.NoPos {
			return false
		}
		for _, u := range unlocks {
			if u > last && u < pos {
				return false
			}
		}
		return true
	}

	perIndexSlot := func(lhs ast.Expr) bool {
		if idxObj == nil {
			return false
		}
		for {
			switch e := lhs.(type) {
			case *ast.ParenExpr:
				lhs = e.X
			case *ast.IndexExpr:
				if mentionsObject(p.TypesInfo, e.Index, idxObj) {
					return true
				}
				lhs = e.X
			case *ast.SelectorExpr:
				lhs = e.X
			case *ast.StarExpr:
				lhs = e.X
			default:
				return false
			}
		}
	}

	check := func(lhs ast.Expr, isAppend bool) {
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := objectOf(p.TypesInfo, root)
		if !captured(obj) || perIndexSlot(lhs) || guarded(lhs.Pos()) {
			return
		}
		if isAppend {
			p.Reportf(lhs.Pos(), "append to captured slice %q inside a par.%s closure grows shared state in worker-scheduling order; write per-index slots (out[i] = ...) instead, or annotate with //lint:allow parshare <reason>", root.Name, entry)
			return
		}
		p.Reportf(lhs.Pos(), "par.%s closure writes captured variable %q; workers run in nondeterministic order — write only per-index slots (out[i] = ...) or a mutex-guarded sink, or annotate with //lint:allow parshare <reason>", entry, root.Name)
	}

	inspect(func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true // := declares closure-locals; nothing captured is written
			}
			for i, lhs := range st.Lhs {
				isAppend := false
				if st.Tok == token.ASSIGN && len(st.Lhs) == len(st.Rhs) {
					isAppend = isSelfAppend(p.TypesInfo, lhs, st.Rhs[i])
				}
				check(lhs, isAppend)
			}
		case *ast.IncDecStmt:
			check(st.X, false)
		}
		return true
	})
}

// rootIdent walks an lvalue to its base identifier: out[i] -> out,
// a.b[k].c -> a, (*p).f -> p. Nil for anything rooted elsewhere (a call
// result, a composite literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isSelfAppend reports whether rhs is append(x, ...) growing the same
// variable lhs writes — the shared-slice growth pattern that lands
// elements in scheduling order.
func isSelfAppend(info *types.Info, lhs, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, ok := objectOf(info, id).(*types.Builtin); !ok {
		return false
	}
	lroot, aroot := rootIdent(lhs), rootIdent(call.Args[0])
	if lroot == nil || aroot == nil {
		return false
	}
	lobj := objectOf(info, lroot)
	return lobj != nil && lobj == objectOf(info, aroot)
}
