package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/lint"
)

// repoRoot resolves the module root from the test's working directory
// (internal/lint) and sanity-checks it holds go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

// TestRepositoryCleanUnderDefaultRules is the gate the lint suite exists
// for: the tree as committed must produce zero findings under the default
// rules. Any regression — a wall-clock read sneaking into a solver, an
// unsorted map iteration feeding output — fails this test before it
// reaches CI's dedicated lint job.
func TestRepositoryCleanUnderDefaultRules(t *testing.T) {
	root := repoRoot(t)
	l, modPath, err := lint.NewModuleLoader(root)
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	paths, err := lint.ExpandPatterns(root, modPath, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	findings, err := lint.Run(l, paths, lint.DefaultRules())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
}

// seedModule writes a throwaway module named taccc (so DefaultRules'
// path-based scoping applies) with one violation per seeded file.
func seedModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module taccc\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolationsAreCaught proves the suite has teeth: a wall-clock
// read in internal/assign, an emitting map-range in internal/experiment,
// and a reason-less allow directive each surface as findings under the
// default rules.
func TestSeededViolationsAreCaught(t *testing.T) {
	dir := seedModule(t, map[string]string{
		"internal/assign/assign.go": `package assign

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/experiment/dump.go": `package experiment

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
		"internal/gap/gap.go": `package gap

import "time"

//lint:allow detrand
func Tick() time.Time { return time.Now() }
`,
	})
	l, modPath, err := lint.NewModuleLoader(dir)
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	paths, err := lint.ExpandPatterns(dir, modPath, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	findings, err := lint.Run(l, paths, lint.DefaultRules())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byAnalyzer := make(map[string]int)
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	// The gap file contributes twice: the malformed directive itself, and
	// the time.Now it consequently fails to suppress.
	want := map[string]int{"detrand": 2, "maporder": 1, "allow": 1}
	for a, n := range want {
		if byAnalyzer[a] != n {
			t.Errorf("analyzer %s: got %d findings, want %d (all: %v)", a, byAnalyzer[a], n, findings)
		}
	}
}

// TestSeededInterproceduralViolations proves the interprocedural teeth:
// a time.Now laundered through a two-hop helper chain in an unscoped
// utility package is flagged where the deterministic package calls it, a
// par closure growing a captured slice is flagged, and a float sum in
// map-range order is flagged — one finding per seeded violation, with
// the laundering chain spelled out.
func TestSeededInterproceduralViolations(t *testing.T) {
	dir := seedModule(t, map[string]string{
		// timeutil is outside every determinism scope; taintclock's facts
		// must carry the taint from here into internal/assign.
		"internal/timeutil/timeutil.go": `package timeutil

import "time"

func stamp() int64 { return time.Now().UnixNano() }

func Wrap() int64 { return stamp() }
`,
		"internal/assign/assign.go": `package assign

import "taccc/internal/timeutil"

func Solve() int64 { return timeutil.Wrap() }
`,
		"internal/par/par.go": `package par

func For(workers, n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`,
		"internal/topology/paths.go": `package topology

import "taccc/internal/par"

func Collect(n int) []int {
	var out []int
	par.For(4, n, func(i int) {
		out = append(out, i*i)
	})
	return out
}
`,
		"internal/cluster/stats.go": `package cluster

func Total(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}
`,
	})
	l, modPath, err := lint.NewModuleLoader(dir)
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	paths, err := lint.ExpandPatterns(dir, modPath, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	findings, err := lint.Run(l, paths, lint.DefaultRules())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byAnalyzer := make(map[string][]lint.Finding)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f)
	}
	for analyzer, want := range map[string]int{"taintclock": 1, "parshare": 1, "fpfold": 1} {
		if len(byAnalyzer[analyzer]) != want {
			t.Errorf("analyzer %s: got %d findings, want %d (all: %v)", analyzer, len(byAnalyzer[analyzer]), want, findings)
		}
	}
	if len(findings) != 3 {
		t.Errorf("got %d findings, want exactly 3: %v", len(findings), findings)
	}
	if tc := byAnalyzer["taintclock"]; len(tc) == 1 {
		if !strings.Contains(tc[0].Message, "timeutil.Wrap -> stamp -> time.Now") {
			t.Errorf("taintclock message lacks the laundering chain: %s", tc[0].Message)
		}
		if filepath.Base(filepath.Dir(tc[0].Pos.Filename)) != "assign" {
			t.Errorf("taintclock finding not at the deterministic call site: %+v", tc[0])
		}
	}
}

// TestClockDisciplineScope pins the exact-match scoping of the
// clock-discipline packages: a timer in internal/obs or internal/par is
// flagged (obs.Clock's annotated reads are the only sanctioned wall-clock
// sites), and internal/obs/slo — whose rolling windows must advance on
// sim time only — is flagged too, while internal/obs/runlog — which
// stamps archive manifests with real timestamps — is outside despite
// sharing the obs prefix.
func TestClockDisciplineScope(t *testing.T) {
	dir := seedModule(t, map[string]string{
		"internal/obs/clockish.go": `package obs

import "time"

func Pace() { time.Sleep(time.Millisecond) }
`,
		"internal/par/par.go": `package par

import "time"

func Throttle() <-chan time.Time { return time.After(time.Millisecond) }
`,
		"internal/obs/slo/window.go": `package slo

import "time"

func WindowEdge() int64 { return time.Now().UnixMilli() }
`,
		"internal/obs/runlog/runlog.go": `package runlog

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	l, modPath, err := lint.NewModuleLoader(dir)
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	paths, err := lint.ExpandPatterns(dir, modPath, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	findings, err := lint.Run(l, paths, lint.DefaultRules())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3 (obs + slo + par, not runlog): %v", len(findings), findings)
	}
	sloFlagged := false
	for _, f := range findings {
		if f.Analyzer != "detrand" {
			t.Errorf("unexpected analyzer %s: %+v", f.Analyzer, f)
		}
		switch filepath.Base(filepath.Dir(f.Pos.Filename)) {
		case "runlog":
			t.Errorf("runlog should be outside the clock-discipline scope: %+v", f)
		case "slo":
			sloFlagged = true
		}
	}
	if !sloFlagged {
		t.Errorf("wall-clock read in internal/obs/slo not flagged: %v", findings)
	}
}

// TestRulesScopedByPackage checks the driver's Match scoping: the same
// wall-clock read that detrand flags in internal/assign passes untouched
// in cmd/, which is outside the deterministic surface.
func TestRulesScopedByPackage(t *testing.T) {
	dir := seedModule(t, map[string]string{
		"cmd/tacx/main.go": `package main

import "time"

func main() { _ = time.Now() }
`,
	})
	l, modPath, err := lint.NewModuleLoader(dir)
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	paths, err := lint.ExpandPatterns(dir, modPath, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	findings, err := lint.Run(l, paths, lint.DefaultRules())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("cmd/ wall-clock read should be out of detrand's scope, got %v", findings)
	}
}
