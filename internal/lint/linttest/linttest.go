// Package linttest runs lint analyzers over fixture packages, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repository's
// stdlib-only framework. Fixtures live in a GOPATH-shaped tree —
// testdata/src/<importpath>/*.go — and mark expected diagnostics with
// trailing comments:
//
//	rand.Intn(3) // want `math/rand`
//
// Each backquoted (or double-quoted) segment after "// want" is a regular
// expression that must match one diagnostic reported on that line; every
// diagnostic must be matched by exactly one want and vice versa.
//
// Interprocedural analyzers additionally assert object facts: a segment
// of the form Name:`regex` expects a fact of type Name, exported for an
// object declared on that line, whose String() matches the regex —
//
//	func Wrap() int64 { // want ClockTaint:`tainted: stamp -> time\.Now`
//
// Facts exported for the fixture package's own objects must all be
// asserted, and vice versa; facts for dependency packages are checked
// when linttest runs over the dependency's import path. //lint:allow
// directives are honored exactly as the taclint driver honors them, so
// fixtures exercise the suppression path too.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"taccc/internal/lint"
)

// TestData returns the absolute path of the calling test's testdata/src
// fixture root.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads the fixture package at importPath under srcRoot, applies the
// analyzer (dependency-first when it uses facts), filters through
// //lint:allow, and checks diagnostics and exported facts against the
// fixture's want comments.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, importPath string) {
	t.Helper()
	l := lint.NewSourceLoader(srcRoot)
	findings, store, err := lint.RunWithFacts(l, []string{importPath}, []lint.Rule{
		{Analyzer: a, Match: func(string) bool { return true }},
	})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}

	dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	match := func(factName, file string, line int, text string) bool {
		for i, w := range wants {
			if matched[i] || w.fact != factName || w.file != file || w.line != line {
				continue
			}
			if w.re.MatchString(text) {
				matched[i] = true
				return true
			}
		}
		return false
	}

	for _, f := range findings {
		if f.Analyzer == "allow" {
			t.Errorf("%s:%d: malformed allow in fixture: %s", f.Pos.Filename, f.Pos.Line, f.Message)
			continue
		}
		if !match("", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message) {
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
		}
	}
	// Facts are asserted for the target package's own objects; a
	// dependency's facts are that fixture's contract, not this one's.
	for _, ef := range store.AnalyzerFacts(a.Name) {
		pos := l.Fset.Position(ef.Object.Pos())
		if filepath.Dir(pos.Filename) != dir {
			continue
		}
		name, text := factTypeName(ef.Fact), ef.Fact.String()
		if !match(name, filepath.Base(pos.Filename), pos.Line, text) {
			t.Errorf("%s:%d: unexpected fact on %s: %s:%q", pos.Filename, pos.Line, ef.Object.Name(), name, text)
		}
	}
	for i, w := range wants {
		if matched[i] {
			continue
		}
		if w.fact != "" {
			t.Errorf("%s:%d: expected fact %s matching %q, got none", w.file, w.line, w.fact, w.re)
			continue
		}
		t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
	}
}

// factTypeName renders a fact's type for want matching: *lint.ClockTaint
// asserts as ClockTaint.
func factTypeName(f lint.Fact) string {
	name := strings.TrimPrefix(fmt.Sprintf("%T", f), "*")
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return name
}

type want struct {
	file string
	line int
	// fact is the expected fact type name; empty for a diagnostic want.
	fact string
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want((?: +(?:[A-Za-z_][A-Za-z0-9_]*:)?(?:`[^`]*`|\"[^\"]*\"))+)\\s*$")
var wantArgRe = regexp.MustCompile("(?:([A-Za-z_][A-Za-z0-9_]*):)?(`[^`]*`|\"[^\"]*\")")

// parseWants scans every non-test fixture file in dir for want comments.
func parseWants(dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				if strings.Contains(line, "// want") {
					return nil, fmt.Errorf("%s:%d: malformed want comment (use // want `regex` or // want Fact:`regex`)", name, i+1)
				}
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				q := arg[2]
				re, err := regexp.Compile(q[1 : len(q)-1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", name, i+1, err)
				}
				wants = append(wants, want{file: name, line: i + 1, fact: arg[1], re: re})
			}
		}
	}
	return wants, nil
}
