// Package linttest runs lint analyzers over fixture packages, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repository's
// stdlib-only framework. Fixtures live in a GOPATH-shaped tree —
// testdata/src/<importpath>/*.go — and mark expected diagnostics with
// trailing comments:
//
//	rand.Intn(3) // want `math/rand`
//
// Each backquoted (or double-quoted) segment after "// want" is a regular
// expression that must match one diagnostic reported on that line; every
// diagnostic must be matched by exactly one want and vice versa.
// //lint:allow directives are honored exactly as the taclint driver
// honors them, so fixtures exercise the suppression path too.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"taccc/internal/lint"
)

// TestData returns the absolute path of the calling test's testdata/src
// fixture root.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads the fixture package at importPath under srcRoot, applies the
// analyzer, filters through //lint:allow, and checks the diagnostics
// against the fixture's want comments.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, importPath string) {
	t.Helper()
	l := lint.NewSourceLoader(srcRoot)
	findings, err := lint.Run(l, []string{importPath}, []lint.Rule{
		{Analyzer: a, Match: func(string) bool { return true }},
	})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}

	wants, err := parseWants(filepath.Join(srcRoot, filepath.FromSlash(importPath)))
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	for _, f := range findings {
		if f.Analyzer == "allow" {
			t.Errorf("%s:%d: malformed allow in fixture: %s", f.Pos.Filename, f.Pos.Line, f.Message)
			continue
		}
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want((?: +(?:`[^`]*`|\"[^\"]*\"))+)\\s*$")
var wantArgRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// parseWants scans every non-test fixture file in dir for want comments.
func parseWants(dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				if strings.Contains(line, "// want") {
					return nil, fmt.Errorf("%s:%d: malformed want comment (use // want `regex`)", name, i+1)
				}
				continue
			}
			for _, arg := range wantArgRe.FindAllString(m[1], -1) {
				re, err := regexp.Compile(arg[1 : len(arg)-1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", name, i+1, err)
				}
				wants = append(wants, want{file: name, line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}
