package lint_test

import (
	"testing"

	"taccc/internal/lint"
	"taccc/internal/lint/linttest"
)

// The nine analyzers each run over a fixture package whose want comments
// pin down positive cases, negative cases, and //lint:allow handling;
// the interprocedural fixtures additionally assert exported facts.

func TestDetrandFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Detrand, "detrand")
}

func TestMaporderFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Maporder, "maporder")
}

func TestNilrecvFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Nilrecv, "nilrecv")
}

func TestSinkerrFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Sinkerr, "sinkerr")
}

func TestHotloopFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Hotloop, "hotloop")
}

func TestResmonFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Resmon, "resmon")
}

func TestTaintclockFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Taintclock, "taintclock")
}

// TestTaintclockHelperFixtures runs the laundering package directly, so
// its own facts and in-package finding are pinned down too.
func TestTaintclockHelperFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Taintclock, "taintclock/helper")
}

func TestParshareFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Parshare, "parshare")
}

func TestFpfoldFixtures(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.Fpfold, "fpfold")
}
