// Package par is a fixture stub of internal/par: the same entry-point
// shapes, executed sequentially. Parshare matches it by path, so fixture
// closures are held to the real worker-write discipline.
package par

// Shard mirrors internal/par.Shard.
type Shard struct{ Lo, Hi int }

func For(workers, n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func ForShards(workers, n int, now func() float64, fn func(i int)) []Shard {
	for i := 0; i < n; i++ {
		fn(i)
	}
	return []Shard{{Lo: 0, Hi: n}}
}

func ForErr(workers, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	for i := range out {
		out[i] = fn(i)
	}
	return out
}

func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := range out {
		var err error
		if out[i], err = fn(i); err != nil {
			return nil, err
		}
	}
	return out, nil
}
