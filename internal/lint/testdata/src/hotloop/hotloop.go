// Package hotloop is the hotloop analyzer's fixture: gap TotalCost calls
// at loop-repeated positions are flagged; one-shot pricing, other gap
// methods and unrelated TotalCost methods are not.
package hotloop

import (
	"gap"
)

func oneShot(in *gap.Instance, a *gap.Assignment) float64 {
	return in.TotalCost(a) // outside any loop: ok
}

func inForBody(in *gap.Instance, a *gap.Assignment) {
	for i := 0; i < 10; i++ {
		_ = in.TotalCost(a) // want `gap TotalCost inside a loop`
	}
}

func inRangeBody(in *gap.Instance, as []*gap.Assignment) {
	for _, a := range as {
		_ = in.TotalCost(a) // want `gap TotalCost inside a loop`
	}
}

func inForHeader(in *gap.Instance, a *gap.Assignment) {
	// The init clause runs once; the condition and post run per iteration.
	for c := in.TotalCost(a); c < in.TotalCost(a); c += in.TotalCost(a) { // want `gap TotalCost inside a loop` `gap TotalCost inside a loop`
	}
}

func inRangeExpr(in *gap.Instance, as []*gap.Assignment) {
	// The range expression is evaluated once: ok.
	for range as[:int(in.TotalCost(as[0]))] {
	}
}

func nestedLoops(in *gap.Instance, a *gap.Assignment) {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			_ = in.TotalCost(a) // want `gap TotalCost inside a loop`
		}
	}
}

func inFuncLit(in *gap.Instance, a *gap.Assignment) {
	// A closure built inside a loop body is loop-repeated too.
	for i := 0; i < 2; i++ {
		f := func() float64 { return in.TotalCost(a) } // want `gap TotalCost inside a loop`
		_ = f
	}
}

func otherGapMethod(in *gap.Instance, a *gap.Assignment) {
	for i := 0; i < 2; i++ {
		_ = in.MeanCost(a) // a different method: ok
	}
}

// pricer has a TotalCost method outside any gap package: never flagged.
type pricer struct{}

func (pricer) TotalCost(of []int) float64 { return 0 }

func unrelatedReceiver(p pricer) {
	for i := 0; i < 2; i++ {
		_ = p.TotalCost(nil) // not the gap package: ok
	}
}

func allowed(in *gap.Instance, a *gap.Assignment) {
	for i := 0; i < 2; i++ {
		// The intentional-full-re-cost escape hatch: annotated in place.
		//lint:allow hotloop coarse outer loop, one re-cost per member
		_ = in.TotalCost(a)
		_ = in.TotalCost(a) //lint:allow hotloop trailing-comment form works too
	}
}
