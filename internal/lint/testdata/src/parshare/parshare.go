// Package parshare exercises the par-closure write discipline: per-index
// slots and mutex-guarded sinks pass, every other write to captured
// state is a finding.
package parshare

import (
	"sync"

	"par"
)

// perIndex writes only its own slot.
func perIndex() []float64 {
	out := make([]float64, 8)
	par.For(4, len(out), func(i int) {
		out[i] = float64(i) * 2
	})
	return out
}

// nestedIndex owns the slot through an outer index too.
func nestedIndex(grid [][]float64) {
	par.For(2, len(grid), func(i int) {
		row := grid[i]
		par.For(2, len(row), func(j int) {
			row[j] = float64(i * j)
		})
	})
}

func appendShared() []float64 {
	var out []float64
	par.For(4, 8, func(i int) {
		out = append(out, float64(i)) // want `append to captured slice "out" inside a par\.For closure`
	})
	return out
}

func counter() int {
	n := 0
	err := par.ForErr(4, 8, func(i int) error {
		n++ // want `par\.ForErr closure writes captured variable "n"`
		return nil
	})
	_ = err
	return n
}

func foldShared() float64 {
	sum := 0.0
	_, err := par.MapErr(4, 8, func(i int) (float64, error) {
		sum = sum + float64(i) // want `par\.MapErr closure writes captured variable "sum"`
		return sum, nil
	})
	_ = err
	return sum
}

func shardSlots(now func() float64) []float64 {
	vals := make([]float64, 8)
	par.ForShards(4, len(vals), now, func(i int) {
		vals[i] = 1
	})
	return vals
}

// mutexSink is the documented shared-sink shape: captured mutex, deferred
// unlock, the window stays open to the end of the closure.
func mutexSink() int {
	var mu sync.Mutex
	total := 0
	par.For(4, 8, func(i int) {
		mu.Lock()
		defer mu.Unlock()
		total += i
	})
	return total
}

// unlockedWrite releases the lock first; the write after Unlock is bare.
func unlockedWrite() int {
	var mu sync.Mutex
	total := 0
	par.For(4, 8, func(i int) {
		mu.Lock()
		total += i
		mu.Unlock()
		total += i // want `par\.For closure writes captured variable "total"`
	})
	return total
}

// localState inside the closure is worker-private and free to mutate.
func localState() []int {
	out := make([]int, 8)
	par.For(4, len(out), func(i int) {
		acc := 0
		for j := 0; j <= i; j++ {
			acc += j
		}
		out[i] = acc
	})
	return out
}

// allowed documents a reviewed violation in place.
func allowed() []float64 {
	var out []float64
	par.For(4, 8, func(i int) {
		out = append(out, float64(i)) //lint:allow parshare results are sorted before use
	})
	return out
}
