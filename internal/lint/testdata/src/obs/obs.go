// Package obs is a miniature stand-in for the real event-sink layer: the
// sinkerr fixture imports it so receiver types resolve to a package whose
// path ends in "obs", exactly how taccc/internal/obs types do.
package obs

type Stream struct{ closed bool }

func (s *Stream) Flush() error { return nil }

func (s *Stream) Close() error {
	s.closed = true
	return nil
}

// Reset returns no error; dropping its result is fine.
func (s *Stream) Reset() {}
