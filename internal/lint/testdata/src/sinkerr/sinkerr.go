// Package sinkerr is the sinkerr analyzer's fixture: dropped errors from
// event-sink Flush/Close calls are flagged in every shape; checked calls
// and non-sink closers are not.
package sinkerr

import (
	"fmt"
	"os"

	"obs"
)

func dropped(s *obs.Stream) {
	s.Flush()           // want `error from \(\*Stream\).Flush is dropped`
	s.Close()           // want `error from \(\*Stream\).Close is dropped`
	defer s.Close()     // want `deferred error from \(\*Stream\).Close is dropped`
	go s.Close()        // want `error from \(\*Stream\).Close is dropped`
	_ = s.Close()       // want `error from \(\*Stream\).Close is dropped`
	_, _ = 0, s.Close() // want `error from \(\*Stream\).Close is dropped`
}

func checked(s *obs.Stream) error {
	if err := s.Flush(); err != nil {
		return err
	}
	err := s.Close()
	return err
}

func nonSink(f *os.File) {
	f.Close()       // os.File is not an event sink
	defer f.Close() // ditto
	s := &obs.Stream{}
	s.Reset() // no error to drop
	fmt.Println("done")
}

func allowed(s *obs.Stream) error {
	defer s.Close() //lint:allow sinkerr backstop for early returns; success path checks Close below
	if err := s.Flush(); err != nil {
		return err
	}
	return s.Close()
}
