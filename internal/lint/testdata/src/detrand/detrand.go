// Package detrand is the detrand analyzer's fixture: wall-clock reads and
// math/rand references are flagged; everything else — including other
// time-package uses — is not.
package detrand

import (
	"math/rand"
	"time"
)

func wallClock() {
	_ = time.Now()        // want `time.Now reads the wall clock`
	start := time.Now()   // want `time.Now reads the wall clock`
	_ = time.Since(start) // want `time.Since reads the wall clock`
	_ = time.Until(start) // want `time.Until reads the wall clock`
	f := time.Now         // want `time.Now reads the wall clock`
	_ = f
	_ = time.Millisecond // durations are constants, not clock reads
	_ = time.Unix(0, 0)  // constructing a fixed time is fine
}

func timers() {
	// The sleep/timer constructors couple control flow to real elapsed
	// time and are flagged alongside the direct reads.
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	select {
	case <-time.After(time.Millisecond): // want `time.After reads the wall clock`
	case <-time.Tick(time.Millisecond): // want `time.Tick reads the wall clock`
	}
	tm := time.NewTimer(time.Millisecond) // want `time.NewTimer reads the wall clock`
	tm.Stop()
	tk := time.NewTicker(time.Millisecond) // want `time.NewTicker reads the wall clock`
	tk.Stop()
	_ = time.AfterFunc(time.Millisecond, func() {}) // want `time.AfterFunc reads the wall clock`
}

func globalRand() {
	_ = rand.Intn(3)     // want `math/rand.Intn bypasses the seeded split-stream layer`
	_ = rand.Float64()   // want `math/rand.Float64 bypasses the seeded split-stream layer`
	rand.Shuffle(3, nil) // want `math/rand.Shuffle bypasses the seeded split-stream layer`
}

func localRand() {
	r := rand.New(rand.NewSource(1)) // want `math/rand.New bypasses` `math/rand.NewSource bypasses`
	_ = r.Intn(3)                    // want `math/rand.Intn bypasses`
}

type holder struct {
	rng *rand.Rand // want `math/rand.Rand bypasses`
}

func allowed() {
	// The measurement-only escape hatch: annotated on the line above.
	//lint:allow detrand runtime measurement only, never feeds decisions
	_ = time.Now()
	_ = time.Now() //lint:allow detrand trailing-comment form works too
}
