// Package maporder is the maporder analyzer's fixture: map-range loops
// that emit in iteration order or collect into never-sorted slices are
// flagged; the collect-then-sort idiom and commutative bodies are not.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

type sink struct{}

func (sink) Emit(string) {}

func emitting(m map[string]int, s sink, buf *bytes.Buffer) {
	for k := range m { // want `map iteration prints with fmt.Println`
		fmt.Println(k)
	}
	for k, v := range m { // want `map iteration prints with fmt.Fprintf`
		fmt.Fprintf(buf, "%s=%d\n", k, v)
	}
	for k := range m { // want `map iteration calls Emit on a sink or writer`
		s.Emit(k)
	}
	for k := range m { // want `map iteration calls WriteString on a sink or writer`
		buf.WriteString(k)
	}
}

func sends(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration sends on a channel`
		ch <- k
	}
}

func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `keys collects map keys or values but is never sorted`
		keys = append(keys, k)
	}
	return keys
}

func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // the canonical fix: collect, then sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func commutative(m map[string]int) (int, map[string]int) {
	total := 0
	double := make(map[string]int, len(m))
	for k, v := range m { // integer sums and keyed writes commute
		total += v
		double[k] = 2 * v
	}
	return total, double
}

func localScratch(m map[string][]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, vs := range m {
		var seen []string // local to the iteration: order-safe
		seen = append(seen, vs...)
		out[k] = len(seen)
	}
	return out
}

type result struct {
	names []string
	rows  []int
}

func fieldCollectSorted(m map[string]int) *result {
	r := &result{}
	for k := range m { // field appends matched against the later sort
		r.names = append(r.names, k)
	}
	sort.Strings(r.names)
	return r
}

func fieldCollectUnsorted(m map[string]int) *result {
	r := &result{}
	for _, v := range m { // want `rows collects map keys or values but is never sorted`
		r.rows = append(r.rows, v)
	}
	return r
}

func sortAfterSwitch(m map[string]int, kind string) []string {
	var keys []string
	switch kind {
	case "all":
		for k := range m { // the sort lives after the switch: still fine
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func indexedAppend(m map[string][]string, buckets [][]string) {
	for _, vs := range m { // want `map iteration appends to a slice it cannot prove sorted`
		buckets[0] = append(buckets[0], vs...)
	}
}

func allowed(m map[string]int) []string {
	var keys []string
	//lint:allow maporder caller sorts before rendering
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
