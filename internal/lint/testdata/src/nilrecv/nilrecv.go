// Package nilrecv is the nilrecv analyzer's fixture: a *Sink-shaped
// interface plus metric-named types put implementations under the
// nil-safety contract; guards, delegation and annotations satisfy it.
package nilrecv

type Event struct{ Kind string }

// EventSink matches the *Sink interface-name convention.
type EventSink interface {
	Emit(Event)
}

// jsonl implements EventSink with a pointer receiver: under contract.
type jsonl struct {
	n     int
	lines []string
}

func (s *jsonl) Emit(e Event) { // guarded: ok
	if s == nil {
		return
	}
	s.n++
}

func (s *jsonl) Flush() error { // want `\(\*jsonl\).Flush is under the nil-safety contract`
	s.lines = nil
	return nil
}

func (s *jsonl) N() int { // want `\(\*jsonl\).N is under the nil-safety contract`
	return s.n
}

func (s *jsonl) Len() int { // or-chained guard with leading nil test: ok
	if s == nil || s.n == 0 {
		return 0
	}
	return len(s.lines)
}

func (s *jsonl) reset() { // unexported: outside the contract
	s.n = 0
}

// Counter is under contract by name.
type Counter struct{ v int64 }

func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

func (c *Counter) Inc() { c.Add(1) } // single-statement delegation: ok

func (c *Counter) Value() int64 { // want `\(\*Counter\).Value is under the nil-safety contract`
	return c.v
}

//lint:allow nilrecv nil-safe because the body only forwards to guarded methods
func (c *Counter) Double() { c.Add(1); c.Add(1) }

// Registry is under contract by name; unnamed receivers are fine because
// the body cannot dereference them.
type Registry struct{}

func (*Registry) Reset() {}

// reader is neither metric-named nor a sink: exempt.
type reader struct{ n int }

func (r *reader) Next() int {
	r.n++
	return r.n
}

// valueSink has value receivers only: a value can never be nil.
type valueSink struct{}

func (valueSink) Emit(Event) {}
