// Package gap is a miniature stand-in for the real cost model: the
// hotloop fixture imports it so receiver types resolve to a package whose
// path ends in "gap", exactly how taccc/internal/gap types do.
package gap

type Assignment struct{ Of []int }

type Instance struct{}

func (in *Instance) TotalCost(a *Assignment) float64 { return 0 }

func (in *Instance) MeanCost(a *Assignment) float64 { return 0 }
