// Package resmon is the resmon analyzer's fixture: runtime memory and
// scheduler statistics reads are flagged — ReadMemStats, NumGoroutine,
// declaring a runtime.MemStats, and anything from runtime/metrics —
// while the runtime package's non-telemetry surface stays usable.
package resmon

import (
	"runtime"
	"runtime/metrics"
)

func memStats() {
	var ms runtime.MemStats   // want `runtime.MemStats reads resource statistics`
	runtime.ReadMemStats(&ms) // want `runtime.ReadMemStats reads resource statistics`
	_ = ms.HeapAlloc
	f := runtime.ReadMemStats // want `runtime.ReadMemStats reads resource statistics`
	_ = f
}

func goroutines() int {
	return runtime.NumGoroutine() // want `runtime.NumGoroutine reads resource statistics`
}

func runtimeMetrics() {
	s := []metrics.Sample{{Name: "/sched/goroutines:goroutines"}} // want `runtime/metrics.Sample reads resource statistics`
	metrics.Read(s)                                               // want `runtime/metrics.Read reads resource statistics`
}

func benign() {
	// The runtime package's non-telemetry surface is not the analyzer's
	// business: parallelism, GC control and identification stay free.
	_ = runtime.GOMAXPROCS(0)
	_ = runtime.NumCPU()
	runtime.GC()
	runtime.Gosched()
	_ = runtime.Version()
}

func allowed() {
	// The measurement-harness escape hatch: annotated on the line above
	// or trailing the flagged line.
	//lint:allow resmon measurement harness reads a raw delta in place
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms) //lint:allow resmon trailing-comment form works too
	_ = ms.Mallocs
}
