// Package fpfold exercises floating-point fold-order policing: sums in
// map-iteration or channel-arrival order are findings, per-key slots,
// per-element updates, sorted-key folds, integer counters and min/max
// folds pass.
package fpfold

import "sort"

func mapSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation inside a map range`
	}
	return sum
}

func mapSumSpelled(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation inside a map range`
	}
	return sum
}

func nestedFixedOrder(m map[string][]float64) float64 {
	total := 0.0
	for _, vs := range m {
		for _, v := range vs {
			total += v // want `floating-point accumulation inside a map range`
		}
	}
	return total
}

func chanSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want `floating-point accumulation inside a channel range`
	}
	return sum
}

// sortedSum is the repository's collect-then-sort idiom: the fold ranges
// over a sorted slice, not the map.
func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// perKey accumulates into the slot owned by the range key.
func perKey(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] += v
	}
}

// derivedKey collides: two keys can land in the same bucket, so the
// bucket's sum still folds in map order.
func derivedKey(m map[int]float64, hist []float64) {
	for k, v := range m {
		hist[k/10] += v // want `floating-point accumulation inside a map range`
	}
}

type job struct{ remaining float64 }

// perElementUpdate writes through the range value: each element is
// touched exactly once, so order cannot matter.
func perElementUpdate(jobs map[int]*job, done float64) {
	for _, j := range jobs {
		j.remaining -= done
	}
}

// intCount is exempt: integer addition is associative.
func intCount(m map[string]float64) int {
	n := 0
	for range m {
		n += 1
	}
	return n
}

// maxFold commutes; a bare reassignment is not accumulation.
func maxFold(m map[string]float64) float64 {
	worst := 0.0
	for _, v := range m {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// allowed documents a reviewed tolerance for last-bit drift.
func allowed(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //lint:allow fpfold diagnostic output only, never archived
	}
	return sum
}
