// Package taintclock exercises transitive clock/rand taint: direct
// sources taint their functions (facts, no diagnostics — those are
// detrand's), calls to tainted functions are findings with the full
// chain, laundering through another package is caught via imported
// facts, and allow directives stop taint at the source or the call.
package taintclock

import (
	"math/rand"
	"time"

	"taintclock/helper"
	"taintclock/xrand"
)

// stamp reads the wall clock directly: detrand owns that diagnostic, but
// the read taints the function.
func stamp() int64 { // want ClockTaint:`tainted: time\.Now`
	return time.Now().UnixNano()
}

func roll() int { // want ClockTaint:`tainted: math/rand\.Intn`
	return rand.Intn(6)
}

func useLocal() int64 { // want ClockTaint:`tainted: stamp -> time\.Now`
	return stamp() // want `call to stamp reaches time\.Now \(stamp -> time\.Now\)`
}

func useRoll() int { // want ClockTaint:`tainted: roll -> math/rand\.Intn`
	return roll() // want `call to roll reaches math/rand\.Intn \(roll -> math/rand\.Intn\)`
}

func useLaundered() int64 { // want ClockTaint:`tainted: helper\.Wrap -> stamp -> time\.Now`
	return helper.Wrap() // want `call to helper\.Wrap reaches time\.Now \(helper\.Wrap -> stamp -> time\.Now\)`
}

// clean calls only untainted helpers; no fact, no finding.
func clean() int64 { return helper.Pure() }

// useXrand calls the sanctioned randomness package; xrand exports no
// taint, so the call is clean.
func useXrand() int { return xrand.Intn(6) }

// sanctioned models obs.Clock: the annotated read is reviewed, so the
// function exports no taint and its callers stay clean.
func sanctioned() int64 {
	return time.Now().UnixNano() //lint:allow detrand models the sanctioned wall-clock entry point
}

func useSanctioned() int64 { return sanctioned() }

// allowedCall suppresses one reviewed call to a tainted function without
// condemning its own callers.
func allowedCall() int64 {
	return helper.Wrap() //lint:allow taintclock reviewed measurement call
}

func useAllowedCall() int64 { return allowedCall() }
