// Package helper is the laundering package: it sits outside any
// determinism scope, reads the wall clock two hops down, and exports the
// innocuous-looking Wrap. Taintclock's facts carry the taint across the
// package boundary to helper's importers.
package helper

import "time"

func stamp() int64 { // want ClockTaint:`tainted: time\.Now`
	return time.Now().UnixNano()
}

// Wrap launders the clock read behind an exported hop.
func Wrap() int64 { // want ClockTaint:`tainted: stamp -> time\.Now`
	return stamp() // want `call to stamp reaches time\.Now \(stamp -> time\.Now\)`
}

// Pure has no taint and exports no fact.
func Pure() int64 { return 42 }
