// Package xrand stands in for internal/xrand: it consumes math/rand but
// is the one sanctioned randomness source, so it exports no taint and
// calling it is clean.
package xrand

import "math/rand"

// Intn draws from the sanctioned stream.
func Intn(n int) int { return rand.Intn(n) }
