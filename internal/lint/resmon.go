package lint

import (
	"go/ast"
)

// Resmon enforces the resource-telemetry boundary: internal/obs/sysmon
// is the one sanctioned consumer of the runtime's memory and scheduler
// statistics. Scattered runtime.ReadMemStats / runtime.NumGoroutine /
// runtime/metrics reads are how ad-hoc "debug telemetry" creeps in —
// each one a stop-the-world (ReadMemStats) or lock-taking probe on a
// hot path, invisible to the sampler's zero-overhead-when-off contract
// and absent from every plane sysmon feeds (registry, resources.jsonl,
// trace counters). Code that needs a resource reading goes through
// sysmon (ReadSnapshot, a Sampler, WatchPeak); measurement harnesses
// that legitimately read MemStats in place — the bench alloc pass —
// annotate each read with //lint:allow resmon <reason>.
var Resmon = &Analyzer{
	Name: "resmon",
	Doc:  "forbid runtime.ReadMemStats/NumGoroutine/MemStats and runtime/metrics outside internal/obs/sysmon; resource readings flow through the sysmon sampler",
	Run:  runResmon,
}

// resmonRuntimeNames are the runtime package's resource-statistics
// entry points: the readers and the MemStats type itself (declaring a
// runtime.MemStats is the tell of an in-place measurement).
var resmonRuntimeNames = map[string]bool{
	"ReadMemStats": true,
	"NumGoroutine": true,
	"MemStats":     true,
}

func runResmon(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := objectOf(p.TypesInfo, sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "runtime":
				if resmonRuntimeNames[obj.Name()] {
					p.Reportf(sel.Pos(), "runtime.%s reads resource statistics outside internal/obs/sysmon; sample through sysmon (ReadSnapshot/Sampler/WatchPeak) or annotate a measurement harness with //lint:allow resmon <reason>", obj.Name())
				}
			case "runtime/metrics":
				p.Reportf(sel.Pos(), "runtime/metrics.%s reads resource statistics outside internal/obs/sysmon; sample through sysmon (ReadSnapshot/Sampler/WatchPeak) or annotate a measurement harness with //lint:allow resmon <reason>", obj.Name())
			}
			return true
		})
	}
	return nil
}
