package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// allowPrefix introduces an in-source suppression. The full form is
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the flagged line or on its own line
// immediately above. The reason is mandatory: an allow records a reviewed,
// intentional violation (wall-clock manifest fields, a deferred Close
// backstop), and the reviewer of the next change needs to know why.
const allowPrefix = "//lint:allow"

// allowDirective is one parsed allow comment.
type allowDirective struct {
	Line     int
	Analyzer string
	Reason   string
}

// allowIndex holds one file's directives, keyed by line.
type allowIndex struct {
	byLine map[int][]allowDirective
}

// parseAllows scans every comment in files for allow directives.
// Malformed directives — a missing analyzer, an analyzer not in known, or
// an empty reason — are returned as diagnostics; they are never
// suppressible, so a typo cannot silently disable a check.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (allowIndex, []Diagnostic) {
	idx := allowIndex{byLine: make(map[int][]allowDirective)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not ours
				}
				fields := strings.Fields(rest)
				line := fset.Position(c.Pos()).Line
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{Pos: c.Pos(), Message: "malformed allow: want //lint:allow <analyzer> <reason>"})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{Pos: c.Pos(), Message: "allow names unknown analyzer " + strconv.Quote(fields[0])})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{Pos: c.Pos(), Message: "allow for " + fields[0] + " has no reason; document why the violation is intentional"})
				default:
					idx.byLine[line] = append(idx.byLine[line], allowDirective{
						Line:     line,
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return idx, bad
}

// suppresses reports whether a directive for analyzer covers line: a
// directive on the line itself (trailing comment) or on the line directly
// above (standalone comment).
func (idx allowIndex) suppresses(analyzer string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, d := range idx.byLine[l] {
			if d.Analyzer == analyzer {
				return true
			}
		}
	}
	return false
}
