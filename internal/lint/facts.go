package lint

import (
	"go/types"
	"sort"
)

// Fact is a piece of analyzer-derived knowledge attached to a
// types.Object — typically a *types.Func — that outlives the analysis of
// the package that defined the object. Facts are how the suite becomes
// interprocedural: an analyzer running over package a exports facts for
// a's functions, and the same analyzer running over a package that
// imports a reads them back, so properties like "this helper transitively
// reaches time.Now" survive package boundaries the way they do in
// golang.org/x/tools/go/analysis.
//
// AFact is a marker method (mirroring the upstream interface); String is
// the human-readable form that linttest fact assertions match against.
type Fact interface {
	AFact()
	String() string
}

// factKey identifies one fact: the analyzer that computed it and the
// object it describes. Object identity is sound across packages because
// one Loader shares a single FileSet and returns the same *types.Package
// for every importer, so an imported function resolves to the same
// types.Object everywhere.
type factKey struct {
	analyzer string
	obj      types.Object
}

// FactStore holds every fact exported during one driver run. One store
// spans all packages and analyzers of the run; analyzers see only their
// own facts through the Pass accessors.
type FactStore struct {
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[factKey]Fact)}
}

func (s *FactStore) put(analyzer string, obj types.Object, f Fact) {
	if s == nil || obj == nil || f == nil {
		return
	}
	s.facts[factKey{analyzer: analyzer, obj: obj}] = f
}

func (s *FactStore) get(analyzer string, obj types.Object) (Fact, bool) {
	if s == nil || obj == nil {
		return nil, false
	}
	f, ok := s.facts[factKey{analyzer: analyzer, obj: obj}]
	return f, ok
}

// ExportedFact pairs an object with the fact an analyzer exported for it.
type ExportedFact struct {
	Object types.Object
	Fact   Fact
}

// AnalyzerFacts returns every fact exported by the named analyzer, sorted
// by the defining package's path and the object's declaration position so
// the slice is deterministic — linttest matches fact assertions against
// it in order.
func (s *FactStore) AnalyzerFacts(analyzer string) []ExportedFact {
	if s == nil {
		return nil
	}
	var out []ExportedFact
	for k, f := range s.facts {
		if k.analyzer == analyzer {
			out = append(out, ExportedFact{Object: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Object, out[j].Object
		ap, bp := "", ""
		if a.Pkg() != nil {
			ap = a.Pkg().Path()
		}
		if b.Pkg() != nil {
			bp = b.Pkg().Path()
		}
		if ap != bp {
			return ap < bp
		}
		if a.Pos() != b.Pos() {
			return a.Pos() < b.Pos()
		}
		return a.Name() < b.Name()
	})
	return out
}

// ExportObjectFact records f as this analyzer's fact for obj. Facts are
// visible to the same analyzer in every later pass of the run, including
// passes over other packages.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil {
		return
	}
	p.facts.put(p.Analyzer.Name, obj, f)
}

// ImportObjectFact returns the fact this analyzer previously exported for
// obj, if any — typically a fact computed while analyzing the package
// that defines obj. The driver analyzes project-internal dependencies
// before their importers, so by the time a package is analyzed the facts
// for everything it imports are present.
func (p *Pass) ImportObjectFact(obj types.Object) (Fact, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.get(p.Analyzer.Name, obj)
}
