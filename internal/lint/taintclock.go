package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taintclock closes detrand's laundering hole. detrand is syntactic and
// package-scoped: a time.Now or math/rand reference inside a
// deterministic package is flagged, but the same read moved into a
// helper — in the same package or, worse, in a package outside detrand's
// scope entirely — sails straight through. Taintclock tracks the
// property transitively: any function that reaches a wall-clock read or
// math/rand through any call chain is tainted (an exported ClockTaint
// object fact), and a call to a tainted function from a scoped package
// is a finding, with the full laundering chain spelled out in the
// message.
//
// Sanctioned sinks stop the taint at its source: a read annotated with
// //lint:allow detrand (obs.Clock's two reads, the experiment suite's
// runtime measurements) or //lint:allow taintclock never taints its
// function, and internal/xrand — the one sanctioned math/rand consumer —
// exports no taint at all. A call annotated with //lint:allow taintclock
// likewise neither reports nor propagates, so a reviewed measurement
// call does not condemn its whole caller chain.
var Taintclock = &Analyzer{
	Name:      "taintclock",
	Doc:       "forbid calls that transitively reach time.Now or math/rand in the deterministic packages, across package boundaries",
	UsesFacts: true,
}

// Run is attached in init: runTaintclock consults Analyzers() for allow
// parsing, and a direct reference in the composite literal would be an
// initialization cycle.
func init() { Taintclock.Run = runTaintclock }

// ClockTaint is the object fact taintclock exports for every function
// that transitively reaches a wall-clock read or math/rand. Chain walks
// from the function's first tainted callee down to the primitive, e.g.
// ["helper.Wrap", "stamp", "time.Now"]; names are unqualified in the
// package that recorded them.
type ClockTaint struct {
	Chain []string
}

// AFact marks ClockTaint as a Fact.
func (*ClockTaint) AFact() {}

func (f *ClockTaint) String() string { return "tainted: " + strings.Join(f.Chain, " -> ") }

// maxTaintChain bounds the chain carried in facts and messages; deeper
// laundering still taints, the message just elides the middle.
const maxTaintChain = 8

// taintSanctionedPackage reports whether path is a package whose
// functions never export taint: internal/xrand wraps math/rand behind
// the seeded split-stream API and is the reason the deterministic
// packages can avoid math/rand in the first place.
func taintSanctionedPackage(path string) bool {
	return path == "xrand" || strings.HasSuffix(path, "/xrand")
}

func runTaintclock(p *Pass) error {
	if taintSanctionedPackage(p.Pkg.Path()) {
		return nil
	}
	// Honor allow directives at taint sources and call sites during
	// propagation, not just at reporting time: an annotated read is a
	// reviewed sink, and treating it as tainted would flag every caller
	// of obs.WallClock. The known set spans the whole suite so a file's
	// unrelated annotations don't confuse the parse.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	allows, _ := parseAllows(p.Fset, p.Files, known)
	allowed := func(pos token.Pos) bool {
		line := p.Fset.Position(pos).Line
		return allows.suppresses(Taintclock.Name, line) || allows.suppresses(Detrand.Name, line)
	}

	type callEdge struct {
		pos    token.Pos
		callee *types.Func
	}
	type fnInfo struct {
		obj   *types.Func
		taint *ClockTaint
		edges []callEdge
	}
	var fns []*fnInfo
	index := make(map[*types.Func]*fnInfo)

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			info := &fnInfo{obj: obj}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					// Direct primitives, detected exactly as detrand
					// detects them (calls and value references alike).
					o := objectOf(p.TypesInfo, n.Sel)
					if o == nil || o.Pkg() == nil {
						return true
					}
					prim := ""
					switch o.Pkg().Path() {
					case "time":
						if wallClockFuncs[o.Name()] {
							prim = "time." + o.Name()
						}
					case "math/rand", "math/rand/v2":
						prim = o.Pkg().Path() + "." + o.Name()
					}
					if prim != "" && info.taint == nil && !allowed(n.Pos()) {
						info.taint = &ClockTaint{Chain: []string{prim}}
					}
				case *ast.CallExpr:
					if allowed(n.Pos()) {
						return true
					}
					if callee := calleeFunc(p.TypesInfo, n); callee != nil {
						info.edges = append(info.edges, callEdge{pos: n.Pos(), callee: callee})
					}
				}
				return true
			})
			fns = append(fns, info)
			index[obj] = info
		}
	}

	calleeTaint := func(fn *types.Func) *ClockTaint {
		if fn.Pkg() != nil && taintSanctionedPackage(fn.Pkg().Path()) {
			return nil
		}
		if local, ok := index[fn]; ok {
			return local.taint
		}
		if f, ok := p.ImportObjectFact(fn); ok {
			if t, ok := f.(*ClockTaint); ok {
				return t
			}
		}
		return nil
	}
	extend := func(fn *types.Func, t *ClockTaint) *ClockTaint {
		chain := append([]string{taintFuncName(p.Pkg, fn)}, t.Chain...)
		if len(chain) > maxTaintChain {
			chain = chain[:maxTaintChain]
		}
		return &ClockTaint{Chain: chain}
	}

	// Fixpoint over in-package edges. Iterating functions in declaration
	// order and edges in source order keeps the recorded chain — and
	// therefore the fact and the message — deterministic; taint is
	// monotone, so the loop terminates even through in-package recursion.
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.taint != nil {
				continue
			}
			for _, e := range info.edges {
				if t := calleeTaint(e.callee); t != nil {
					info.taint = extend(e.callee, t)
					changed = true
					break
				}
			}
		}
	}

	for _, info := range fns {
		if info.taint != nil {
			p.ExportObjectFact(info.obj, info.taint)
		}
	}
	// Report every call edge whose callee is tainted. Direct primitive
	// reads are deliberately not reported here — those are detrand's
	// findings; taintclock owns the laundered hop.
	for _, info := range fns {
		for _, e := range info.edges {
			if t := calleeTaint(e.callee); t != nil {
				full := extend(e.callee, t)
				prim := full.Chain[len(full.Chain)-1]
				p.Reportf(e.pos, "call to %s reaches %s (%s) in a deterministic package; route timing through obs.Clock and randomness through internal/xrand, or annotate with //lint:allow taintclock <reason>",
					taintFuncName(p.Pkg, e.callee), prim, strings.Join(full.Chain, " -> "))
			}
		}
	}
	return nil
}

// calleeFunc resolves a call expression to the named function or method
// it invokes, or nil for calls through function values, built-ins, type
// conversions and function literals.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		switch e := fun.(type) {
		case *ast.ParenExpr:
			fun = e.X
		case *ast.IndexExpr: // explicit generic instantiation f[T](...)
			fun = e.X
		case *ast.IndexListExpr:
			fun = e.X
		default:
			var id *ast.Ident
			switch e := fun.(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				return nil
			}
			fn, _ := objectOf(info, id).(*types.Func)
			return fn
		}
	}
}

// taintFuncName renders fn for chains and messages: methods carry their
// receiver type, and anything outside the package under analysis carries
// its package name.
func taintFuncName(cur *types.Package, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != cur {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
