package lint_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"taccc/internal/lint"
)

func sampleFindings() []lint.Finding {
	mk := func(analyzer, file string, line, col int, msg string) lint.Finding {
		f := lint.Finding{Analyzer: analyzer, Message: msg}
		f.Pos.Filename = file
		f.Pos.Line = line
		f.Pos.Column = col
		return f
	}
	return []lint.Finding{
		mk("detrand", "/repo/internal/assign/solve.go", 42, 9, "wall-clock read time.Now in a deterministic package"),
		mk("parshare", "/repo/internal/topology/paths.go", 7, 3, `append to captured slice "out" inside a par.For closure`),
		mk("allow", "/repo/internal/gap/gap.go", 3, 1, "malformed //lint:allow directive: missing reason"),
	}
}

// TestSARIFRoundTrip writes findings and reads them back through the
// strict reader: analyzer, relative slash path, line, column and message
// all survive.
func TestSARIFRoundTrip(t *testing.T) {
	in := sampleFindings()
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, in, "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	out, err := lint.ReadSARIF(&buf)
	if err != nil {
		t.Fatalf("ReadSARIF rejected our own output: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip returned %d findings, want %d", len(out), len(in))
	}
	wantURIs := []string{"internal/assign/solve.go", "internal/topology/paths.go", "internal/gap/gap.go"}
	for i, f := range out {
		if f.Analyzer != in[i].Analyzer || f.Message != in[i].Message {
			t.Errorf("finding %d = %s %q, want %s %q", i, f.Analyzer, f.Message, in[i].Analyzer, in[i].Message)
		}
		if f.Pos.Filename != wantURIs[i] {
			t.Errorf("finding %d uri = %q, want %q", i, f.Pos.Filename, wantURIs[i])
		}
		if f.Pos.Line != in[i].Pos.Line || f.Pos.Column != in[i].Pos.Column {
			t.Errorf("finding %d at %d:%d, want %d:%d", i, f.Pos.Line, f.Pos.Column, in[i].Pos.Line, in[i].Pos.Column)
		}
	}
}

// TestSARIFCleanRun pins the empty-tree shape: still a complete document
// — version, one run, the full rule table — with a results array that is
// present and empty, not null (GitHub's upload rejects null).
func TestSARIFCleanRun(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, nil, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "taclint" {
		t.Errorf("unexpected document shape: %s", buf.String())
	}
	if string(doc.Runs[0].Results) != "[]" {
		t.Errorf("clean run results = %s, want []", doc.Runs[0].Results)
	}
	// One rule per analyzer plus the allow pseudo-rule.
	if want := len(lint.Analyzers()) + 1; len(doc.Runs[0].Tool.Driver.Rules) != want {
		t.Errorf("rule table has %d entries, want %d", len(doc.Runs[0].Tool.Driver.Rules), want)
	}
	if _, err := lint.ReadSARIF(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("strict reader rejected the clean document: %v", err)
	}
}

// TestSARIFReaderStrictness feeds the reader documents that are
// near-valid in exactly one way each; all must be rejected.
func TestSARIFReaderStrictness(t *testing.T) {
	var valid bytes.Buffer
	if err := lint.WriteSARIF(&valid, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(string) string{
		"unknown field": func(s string) string {
			return strings.Replace(s, `"version"`, `"versionn"`, 1)
		},
		"wrong version": func(s string) string {
			return strings.Replace(s, `"2.1.0"`, `"2.0.0"`, 1)
		},
		"undeclared ruleId": func(s string) string {
			return strings.Replace(s, `"ruleId": "detrand"`, `"ruleId": "nosuch"`, 1)
		},
		"zero startLine": func(s string) string {
			return strings.Replace(s, `"startLine": 42`, `"startLine": 0`, 1)
		},
	}
	for name, mutate := range cases {
		doc := mutate(valid.String())
		if doc == valid.String() {
			t.Fatalf("%s: mutation did not apply", name)
		}
		if _, err := lint.ReadSARIF(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: strict reader accepted the document", name)
		}
	}

	// Structurally valid JSON with two runs.
	twoRuns := `{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[` +
		`{"tool":{"driver":{"name":"taclint","rules":[]}},"results":[]},` +
		`{"tool":{"driver":{"name":"taclint","rules":[]}},"results":[]}]}`
	if _, err := lint.ReadSARIF(strings.NewReader(twoRuns)); err == nil {
		t.Errorf("two runs: strict reader accepted the document")
	}
	// A result without locations, well-formed.
	noLoc := `{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[` +
		`{"tool":{"driver":{"name":"taclint","rules":[{"id":"detrand","shortDescription":{"text":"d"}}]}},` +
		`"results":[{"ruleId":"detrand","level":"error","message":{"text":"m"},"locations":[]}]}]}`
	if _, err := lint.ReadSARIF(strings.NewReader(noLoc)); err == nil {
		t.Errorf("no locations: strict reader accepted the document")
	}
}
