package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Nilrecv machine-checks the zero-overhead-observability contract that
// DESIGN.md documents: a nil *Registry hands out nil metrics whose
// methods no-op, and a typed-nil sink can flow through MultiSink and be
// emitted into freely. That only holds if every exported pointer-receiver
// method on the nil-safe types starts by bailing out on a nil receiver.
//
// A type is under the contract when its pointer implements an interface
// declared in the same package whose name ends in "Sink" (JSONL and
// friends), or when it is one of the metric/registry types by name
// (Counter, Gauge, Histogram, Registry). A method passes when its body
//
//   - begins with `if recv == nil { … return }` (possibly `recv == nil ||
//     …`), or
//   - is a single statement delegating to another method on the same
//     receiver (Counter.Inc → c.Add(1): the nil receiver flows into a
//     method that is itself checked), or
//   - has no named receiver (the body cannot dereference what it cannot
//     name).
//
// Methods that are nil-safe for subtler reasons carry
// //lint:allow nilrecv <reason>.
var Nilrecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "exported pointer-receiver methods on obs sink/metric/registry types must begin with a nil-receiver guard",
	Run:  runNilrecv,
}

// nilSafeTypeNames are the metric types under the nil-safety contract
// that do not implement a *Sink interface.
var nilSafeTypeNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Registry": true,
}

func runNilrecv(p *Pass) error {
	// Interfaces named *Sink declared at package scope define the
	// sink-shaped part of the contract.
	var sinkIfaces []*types.Interface
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !strings.HasSuffix(name, "Sink") {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			sinkIfaces = append(sinkIfaces, iface)
		}
	}
	underContract := func(named *types.Named) bool {
		if nilSafeTypeNames[named.Obj().Name()] {
			return true
		}
		ptr := types.NewPointer(named)
		for _, iface := range sinkIfaces {
			if types.Implements(ptr, iface) {
				return true
			}
		}
		return false
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			ptr, ok := sig.Recv().Type().(*types.Pointer)
			if !ok {
				continue // value receiver: cannot be nil
			}
			named, ok := ptr.Elem().(*types.Named)
			if !ok || !underContract(named) {
				continue
			}
			recvObj := receiverObject(p.TypesInfo, fd)
			if recvObj == nil {
				continue // unnamed or blank receiver: body cannot touch it
			}
			if len(fd.Body.List) == 0 {
				continue
			}
			if beginsWithNilGuard(p.TypesInfo, fd.Body.List[0], recvObj) {
				continue
			}
			if isReceiverDelegation(p.TypesInfo, fd.Body.List, recvObj) {
				continue
			}
			p.Reportf(fd.Name.Pos(), "exported method (*%s).%s is under the nil-safety contract but does not begin with a nil-receiver guard (or annotate with //lint:allow nilrecv <reason>)", named.Obj().Name(), fd.Name.Name)
		}
	}
	return nil
}

// receiverObject returns the receiver's variable object, or nil when the
// receiver is unnamed or blank.
func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	return info.Defs[name]
}

// beginsWithNilGuard reports whether stmt is `if recv == nil … { …;
// return }` — the leftmost condition of any || chain must be the nil
// comparison, and the guard body must end in a return.
func beginsWithNilGuard(info *types.Info, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond := ifs.Cond
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR {
			cond = bin.X
			continue
		}
		if bin.Op != token.EQL {
			return false
		}
		nilCmp := (isRecvIdent(info, bin.X, recv) && isNilIdent(info, bin.Y)) ||
			(isRecvIdent(info, bin.Y, recv) && isNilIdent(info, bin.X))
		if !nilCmp {
			return false
		}
		break
	}
	n := len(ifs.Body.List)
	if n == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[n-1].(*ast.ReturnStmt)
	return isReturn
}

func isRecvIdent(info *types.Info, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && objectOf(info, id) == recv
}

// isReceiverDelegation reports whether body is exactly one statement
// forwarding to a method on the receiver: `recv.M(…)` or
// `return recv.M(…)`.
func isReceiverDelegation(info *types.Info, body []ast.Stmt, recv types.Object) bool {
	if len(body) != 1 {
		return false
	}
	var call ast.Expr
	switch s := body[0].(type) {
	case *ast.ExprStmt:
		call = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call = s.Results[0]
	default:
		return false
	}
	ce, ok := call.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok || info.Selections[sel] == nil {
		return false
	}
	return isRecvIdent(info, sel.X, recv)
}
