package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder catches the exact bug class PR 1 had to fix by hand in the LNS
// regret-reinsertion: Go map iteration order is deliberately randomized,
// so a `for … range m` over a map whose body feeds anything
// order-sensitive makes output differ run to run (and workers=1 vs
// workers=8 diverge). Two shapes are flagged:
//
//   - emitting bodies: the loop writes inside the iteration — fmt
//     printing, Write/WriteString on a writer or hash, obs sink Emit /
//     OnIter, or a channel send. The fix is to collect and sort keys
//     first, then iterate the sorted slice.
//   - unsorted collection: the loop appends to a slice (a variable or a
//     struct field) declared outside the loop, and nothing after the loop
//     in the enclosing top-level function sorts that slice (a call into
//     sort/slices, or a Sort method, mentioning it). The collect-then-sort
//     idiom — append inside the range, sort.Strings right after — passes
//     untouched.
//
// Commutative bodies (integer counters, writes into another map by key)
// are not flagged. Loops that intentionally hand unsorted data to a
// caller that sorts are annotated with //lint:allow maporder <reason>.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map iteration that emits output or collects into a never-sorted slice",
	Run:  runMaporder,
}

// emitMethodNames are method names whose calls are ordered side effects.
// Histogram.Observe and Counter.Add are deliberately absent: bucket
// counting is commutative, so observing in map order is harmless.
var emitMethodNames = map[string]bool{
	"Emit": true, "OnIter": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMaporder(p *Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			var body *ast.BlockStmt
			switch decl := d.(type) {
			case *ast.FuncDecl:
				body = decl.Body
			case *ast.GenDecl:
				// Function literals in package-level var declarations.
				ast.Inspect(decl, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						inspectMapRanges(p, lit.Body)
						return false
					}
					return true
				})
				continue
			}
			if body != nil {
				inspectMapRanges(p, body)
			}
		}
	}
	return nil
}

func inspectMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if ok && isMapRange(p.TypesInfo, rng) {
			checkMapRange(p, rng, body)
		}
		return true
	})
}

func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(p *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	// Collect the loop body's ordered side effects.
	var appendTargets []types.Object // outer-declared slices or fields appended to
	reported := false
	emit := func(what string) {
		if !reported {
			p.Reportf(rng.For, "map iteration %s in map order; iterate sorted keys instead (or annotate with //lint:allow maporder <reason>)", what)
			reported = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			emit("sends on a channel")
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.TypesInfo, call) || i >= len(s.Lhs) {
					continue
				}
				obj := appendTarget(p.TypesInfo, s.Lhs[i])
				if obj == nil {
					// append into an element or a computed place: not
					// matchable against a later sort.
					emit("appends to a slice it cannot prove sorted")
					continue
				}
				if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
					continue // slice local to the loop body
				}
				appendTargets = append(appendTargets, obj)
			}
		case *ast.CallExpr:
			sel, ok := s.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := objectOf(p.TypesInfo, sel.Sel)
			if obj == nil {
				return true
			}
			if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" && isPrintName(obj.Name()) {
				emit("prints with fmt." + obj.Name())
				return true
			}
			if p.TypesInfo.Selections[sel] != nil && emitMethodNames[obj.Name()] {
				emit("calls " + obj.Name() + " on a sink or writer")
			}
		}
		return true
	})
	if reported {
		return
	}
	// Pure collection loops: fine if every appended-to slice is sorted
	// after the loop, anywhere later in the enclosing function.
	flagged := make(map[types.Object]bool)
	for _, obj := range appendTargets {
		if flagged[obj] || sortedAfter(p.TypesInfo, obj, funcBody, rng.End()) {
			continue
		}
		flagged[obj] = true
		p.Reportf(rng.For, "%s collects map keys or values but is never sorted before use; sort it after the loop (or annotate with //lint:allow maporder <reason>)", obj.Name())
	}
}

// appendTarget resolves the assignable being appended to: a plain
// variable (`keys = append(keys, …)`) or a field selector chain rooted in
// an identifier (`d.Metrics = append(d.Metrics, …)`), in which case the
// field's object stands for the target. Anything else — index
// expressions, map elements — returns nil.
func appendTarget(info *types.Info, lhs ast.Expr) types.Object {
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		return objectOf(info, e)
	case *ast.SelectorExpr:
		if _, ok := e.X.(*ast.Ident); ok {
			return objectOf(info, e.Sel)
		}
	}
	return nil
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := objectOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// sortedAfter reports whether the enclosing function sorts obj anywhere
// past the loop (position after): a call into package sort or slices
// whose arguments mention obj, or a method call named Sort* on an
// expression mentioning obj.
func sortedAfter(info *types.Info, obj types.Object, funcBody *ast.BlockStmt, after token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := objectOf(info, sel.Sel)
		if fn == nil {
			return true
		}
		if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			for _, a := range call.Args {
				if mentionsObject(info, a, obj) {
					found = true
					return false
				}
			}
		} else if info.Selections[sel] != nil && strings.HasPrefix(fn.Name(), "Sort") &&
			mentionsObject(info, sel.X, obj) {
			// a Sort method on a custom collection
			found = true
			return false
		}
		return true
	})
	return found
}
