package lint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Rule binds one analyzer to the set of packages it polices. Scoping
// lives here, not in the analyzers, so each analyzer stays a pure
// package-in/diagnostics-out function that fixtures can drive directly.
type Rule struct {
	Analyzer *Analyzer
	// Match reports whether the analyzer applies to the package with the
	// given import path.
	Match func(pkgPath string) bool
}

// DeterministicPackages are the module packages whose results must be a
// pure function of (seed, configuration): everything the solvers,
// generators and simulators touch. cmd/ is deliberately outside —
// commands measure wall-clock solve time by design. Matching is by
// prefix, so subpackages inherit the contract.
var DeterministicPackages = []string{
	"taccc/internal/assign",
	"taccc/internal/gap",
	"taccc/internal/topology",
	"taccc/internal/experiment",
	"taccc/internal/sim",
	"taccc/internal/cluster",
	"taccc/internal/workload",
}

// ClockDisciplinePackages extends detrand's wall-clock scope (not its
// math/rand scope — these packages draw no randomness) to the plumbing
// that sits between the solvers and the wall: obs, whose Clock is the
// single sanctioned entry point for real time (clock.go carries the
// repository's only //lint:allow detrand annotations), par, whose
// workers must never pace themselves off timers, and obs/slo, whose
// rolling windows advance exclusively on sim time — a wall-clock read
// there would silently decouple window boundaries from the engine and
// break the plane's byte-identical determinism contract. Matched
// exactly, not by prefix: obs/runlog stamps archive manifests with real
// timestamps and stays outside.
var ClockDisciplinePackages = []string{
	"taccc/internal/obs",
	"taccc/internal/obs/slo",
	"taccc/internal/par",
}

// DefaultRules encodes the repository policy:
//
//   - detrand over the deterministic packages plus the clock-discipline
//     packages (internal/xrand itself is the one sanctioned math/rand
//     consumer and is not listed; obs.Clock is the one sanctioned
//     wall-clock consumer and annotates its two reads in place);
//   - maporder everywhere — ordered output can leak from any layer;
//   - nilrecv over internal/obs, where the nil-safe sink/metric types
//     live;
//   - sinkerr over cmd/, where event streams are opened and must fail
//     loudly;
//   - hotloop over internal/assign, where every solver inner loop is
//     expected to price moves through the incremental gap.Evaluator;
//   - resmon everywhere except internal/obs/sysmon, the one sanctioned
//     consumer of runtime memory/scheduler statistics (the bench alloc
//     pass annotates its in-place measurement reads);
//   - taintclock over the same scope as detrand — it is detrand's
//     interprocedural closure, catching wall-clock and math/rand reads
//     laundered through helpers in any package (internal/xrand stays the
//     sanctioned randomness source and exports no taint);
//   - parshare everywhere — a par entry point can be called from any
//     layer, and the worker-write discipline travels with the call;
//   - fpfold everywhere — an FP fold in map or arrival order breaks
//     byte-identical output no matter which layer computes it.
func DefaultRules() []Rule {
	inDeterministic := func(path string) bool {
		for _, p := range DeterministicPackages {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
	inDetrandScope := func(path string) bool {
		if inDeterministic(path) {
			return true
		}
		for _, p := range ClockDisciplinePackages {
			if path == p {
				return true
			}
		}
		return false
	}
	return []Rule{
		{Analyzer: Detrand, Match: inDetrandScope},
		{Analyzer: Maporder, Match: func(string) bool { return true }},
		{Analyzer: Nilrecv, Match: func(path string) bool { return path == "taccc/internal/obs" }},
		{Analyzer: Sinkerr, Match: func(path string) bool { return strings.HasPrefix(path, "taccc/cmd/") }},
		{Analyzer: Hotloop, Match: func(path string) bool {
			return path == "taccc/internal/assign" || strings.HasPrefix(path, "taccc/internal/assign/")
		}},
		{Analyzer: Resmon, Match: func(path string) bool {
			return path != "taccc/internal/obs/sysmon"
		}},
		{Analyzer: Taintclock, Match: inDetrandScope},
		{Analyzer: Parshare, Match: func(string) bool { return true }},
		{Analyzer: Fpfold, Match: func(string) bool { return true }},
	}
}

// Finding is one diagnostic tagged with its analyzer and resolved
// position, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run loads every package named by importPaths through l, applies each
// rule's analyzer to the packages it matches, filters the results
// through the //lint:allow index, and returns the surviving findings
// sorted by file, line, column and analyzer. Malformed allow directives
// are themselves findings (analyzer "allow") in every package, so a typo
// cannot silently disable a check.
func Run(l *Loader, importPaths []string, rules []Rule) ([]Finding, error) {
	findings, _, err := RunWithFacts(l, importPaths, rules)
	return findings, err
}

// RunWithFacts is Run, additionally returning the fact store the run
// populated, for linttest fact assertions and the facts-layer tests.
//
// Analyzers that declare UsesFacts are interprocedural: before such an
// analyzer visits a package, the driver runs it over the package's
// project-internal import closure, dependency-first, so facts exported
// for a helper in an unscoped package (say, a two-hop time.Now wrapper)
// are already in the store when the scoped importer is analyzed. Each
// (analyzer, package) pair runs at most once per driver run; diagnostics
// produced while analyzing a dependency are cached and surface only if
// that package is itself a lint target whose rule matches.
func RunWithFacts(l *Loader, importPaths []string, rules []Rule) ([]Finding, *FactStore, error) {
	// The known-analyzer set for allow validation spans the whole suite,
	// not just the active rules: running `taclint -only detrand` over a
	// tree annotated with //lint:allow hotloop must not turn those
	// reviewed annotations into "unknown analyzer" findings.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, r := range rules {
		known[r.Analyzer.Name] = true
	}

	store := NewFactStore()
	diagCache := make(map[string]map[string][]Diagnostic) // analyzer name -> package path -> diagnostics
	var analyze func(a *Analyzer, pkg *Package) ([]Diagnostic, error)
	analyze = func(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
		byPkg := diagCache[a.Name]
		if byPkg == nil {
			byPkg = make(map[string][]Diagnostic)
			diagCache[a.Name] = byPkg
		}
		if diags, ok := byPkg[pkg.Path]; ok {
			return diags, nil
		}
		// Go forbids import cycles, so the recursion terminates; marking
		// the cache before descending would only mask a loader bug.
		if a.UsesFacts {
			for _, dep := range projectImports(l, pkg) {
				depPkg, err := l.Load(dep)
				if err != nil {
					return nil, err
				}
				if _, err := analyze(a, depPkg); err != nil {
					return nil, err
				}
			}
		}
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     store,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		byPkg[pkg.Path] = diags
		return diags, nil
	}

	var findings []Finding
	for _, path := range importPaths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, nil, err
		}
		allows, bad := parseAllows(l.Fset, pkg.Files, known)
		for _, d := range bad {
			findings = append(findings, Finding{Analyzer: "allow", Pos: l.Fset.Position(d.Pos), Message: d.Message})
		}
		for _, r := range rules {
			if !r.Match(path) {
				continue
			}
			diags, err := analyze(r.Analyzer, pkg)
			if err != nil {
				return nil, nil, err
			}
			for _, d := range diags {
				pos := l.Fset.Position(d.Pos)
				if allows.suppresses(r.Analyzer.Name, pos.Line) {
					continue
				}
				findings = append(findings, Finding{Analyzer: r.Analyzer.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, store, nil
}

// projectImports lists pkg's direct imports that the loader can resolve
// from source — the module- or fixture-internal dependencies whose facts
// an interprocedural analyzer needs — sorted for deterministic analysis
// order.
func projectImports(l *Loader, pkg *Package) []string {
	var out []string
	for _, imp := range pkg.Types.Imports() {
		if l.resolvable(imp.Path()) {
			out = append(out, imp.Path())
		}
	}
	sort.Strings(out)
	return out
}

// Print writes findings one per line in the go-vet style
// "file:line:col: message [analyzer]", with file paths relative to dir
// when possible.
func Print(w io.Writer, findings []Finding, dir string) {
	for _, f := range findings {
		name := f.Pos.Filename
		if dir != "" {
			if rel, ok := strings.CutPrefix(name, dir+"/"); ok {
				name = rel
			}
		}
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
}
