// Package lint is the repository's static-analysis suite: nine analyzers
// that machine-enforce the determinism, zero-overhead-observability,
// hot-path-performance and parallel-safety invariants the rest of the
// codebase only documents.
//
//   - detrand: no wall-clock reads (time.Now/Since/Until) and no math/rand
//     in the deterministic packages — all randomness flows through the
//     seeded split-stream layer in internal/xrand.
//   - maporder: no map iteration that appends to an outer slice without a
//     later sort, emits events, or writes output — the bug class that made
//     LNS nondeterministic per seed before PR 1 fixed it by hand.
//   - nilrecv: exported pointer-receiver methods on the obs sink, metric
//     and registry types must begin with a nil-receiver guard, so the
//     "instrumentation off means nil means no-op" contract is provable.
//   - sinkerr: commands must not drop the error from an event-sink
//     Flush/Close — a -events or -archive stream that silently truncates
//     is worse than no stream.
//   - hotloop: no gap TotalCost calls inside loop bodies in the solver
//     packages — metaheuristic iterations price moves through the
//     incremental gap.Evaluator, never by re-costing the whole assignment.
//   - resmon: no runtime.ReadMemStats/NumGoroutine/runtime-metrics reads
//     outside internal/obs/sysmon — resource telemetry flows through the
//     sysmon sampler so "sysmon off" provably means zero probes.
//   - taintclock: the interprocedural complement of detrand — a function
//     that transitively reaches time.Now or math/rand through any call
//     chain is tainted (an exported object fact), and calling a tainted
//     function from a determinism-scoped package is a finding even when
//     the helper lives outside detrand's package scope.
//   - parshare: closures passed to internal/par entry points may write
//     only per-index slots (out[i] = ...) or mutex-guarded sinks —
//     the static complement of the race detector for the repository's
//     bit-identical-at-any-worker-count contract.
//   - fpfold: no floating-point accumulation inside map or channel
//     ranges — FP addition is non-associative, so a reduction that folds
//     in map-iteration or arrival order breaks the byte-identical
//     archive contract in the last bits.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, object facts, analysistest-style "// want" fixtures)
// but is built entirely on the standard library's go/ast, go/types and
// go/importer so the repository stays dependency-free; swapping an
// analyzer onto the upstream framework is a mechanical change.
// Interprocedural analyzers export per-function facts (see facts.go)
// that the driver carries across packages, dependency-first, so taint
// laundered through an unscoped helper package is still visible at the
// scoped call site. Intentional violations are annotated in place with
// "//lint:allow <analyzer> <reason>" (see allow.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Run inspects a single type-checked package
// and reports findings through the Pass; it must not depend on any state
// outside the Pass so analyzers can run over packages in any order.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name> <reason>" annotations.
	Name string
	// Doc is the one-line description shown by taclint's usage text.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
	// UsesFacts marks the analyzer interprocedural: the driver runs it
	// over a package's project-internal import closure (dependency-first)
	// before the package itself, so facts exported for imported objects
	// are available through Pass.ImportObjectFact.
	UsesFacts bool
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the package (and
	// for any source-imported dependency).
	Fset *token.FileSet
	// Files are the package's parsed files, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression types, object
	// resolutions and method selections for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)

	// facts is the run-wide fact store (see facts.go); accessed through
	// ExportObjectFact / ImportObjectFact.
	facts *FactStore
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers lists every analyzer in the suite, in diagnostic-output order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Nilrecv, Sinkerr, Hotloop, Resmon, Taintclock, Parshare, Fpfold}
}

// objectOf resolves an identifier to its object via Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := objectOf(info, id).(*types.Nil)
	return isNil
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(info *types.Info, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
