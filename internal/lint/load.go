package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("taccc/internal/assign").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the type-checker's outputs.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source using only the
// standard library. Project-internal imports are resolved from source
// (memoized, cycle-checked); standard-library imports go through the
// compiler's export data when available, falling back to type-checking
// the standard library from GOROOT source. Test files (_test.go) are not
// loaded: the invariants taclint enforces are about shipped solver and
// command code, and tests legitimately use wall clocks for timeouts.
type Loader struct {
	// Fset is shared by every file the loader touches so diagnostic
	// positions resolve uniformly.
	Fset *token.FileSet

	resolve func(importPath string) (dir string, ok bool)
	std     types.Importer
	pkgs    map[string]*Package
	errs    map[string]error
	loading map[string]bool
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		resolve: resolve,
		pkgs:    make(map[string]*Package),
		errs:    make(map[string]error),
		loading: make(map[string]bool),
	}
	// Prefer export data (fast); fall back to type-checking the standard
	// library from source, which always works with a GOROOT present.
	gc := importer.ForCompiler(fset, "gc", nil)
	if _, err := gc.Import("fmt"); err == nil {
		l.std = gc
	} else {
		l.std = importer.ForCompiler(fset, "source", nil)
	}
	return l
}

// NewModuleLoader returns a loader rooted at the Go module in dir (the
// directory holding go.mod). Import paths under the module path resolve
// into the module tree; everything else is treated as standard library.
func NewModuleLoader(dir string) (*Loader, string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, "", fmt.Errorf("lint: not a module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
	}
	resolve := func(path string) (string, bool) {
		if path == modPath {
			return dir, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	return newLoader(resolve), modPath, nil
}

// NewSourceLoader returns a loader that resolves every import path as a
// directory under root, GOPATH-style — the shape analysistest uses for
// fixture trees (testdata/src/<importpath>). Unresolvable paths fall back
// to the standard library.
func NewSourceLoader(root string) *Loader {
	return newLoader(func(path string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// resolvable reports whether importPath resolves to a source directory
// under this loader's root — i.e. whether it is a project-internal
// package rather than standard library.
func (l *Loader) resolvable(importPath string) bool {
	_, ok := l.resolve(importPath)
	return ok
}

// Load parses and type-checks the package at importPath (memoized).
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[importPath]; ok {
		return nil, err
	}
	pkg, err := l.load(importPath)
	if err != nil {
		l.errs[importPath] = err
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

func (l *Loader) load(importPath string) (*Package, error) {
	dir, ok := l.resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve import %q", importPath)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer func() { l.loading[importPath] = false }()

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if _, ok := l.resolve(path); ok {
				pkg, err := l.Load(path)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
			return l.std.Import(path)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, 3)
		for i, e := range typeErrs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-3))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	return &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// goFileNames lists the non-test Go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns turns command-line package patterns into import paths
// under the module rooted at dir with module path modPath. Supported
// patterns: "./..." (every package in the module), "./x" and "x/y"
// relative directories, and full import paths under the module. testdata,
// hidden and underscore-prefixed directories are skipped, as the go tool
// does.
func ExpandPatterns(dir, modPath string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := modulePackages(dir, modPath)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, modPath) && (pat == modPath || strings.HasPrefix(pat, modPath+"/")):
			add(pat)
		default:
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
			if rel == "." {
				add(modPath)
			} else {
				add(modPath + "/" + rel)
			}
		}
	}
	return out, nil
}

// modulePackages walks the module tree collecting every directory holding
// at least one non-test Go file.
func modulePackages(dir, modPath string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, modPath)
		} else {
			out = append(out, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
